//! Random and structured graph generators for experiments and tests.
//!
//! All generators are deterministic given a seed. Random models return edge
//! lists so callers can choose directed/undirected interpretation and attach
//! weights with [`assign_uniform_weights`].

use adsketch_util::rng::{Rng64, SplitMix64, Xoshiro256pp};

use crate::csr::{Graph, NodeId};

/// Erdős–Rényi G(n, p) edge list over unordered pairs (no self-loops).
///
/// Uses geometric skipping so the cost is proportional to the number of
/// edges generated, not to n².
pub fn gnp_edges(n: usize, p: f64, seed: u64) -> Vec<(NodeId, NodeId)> {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let mut edges = Vec::new();
    if n < 2 || p == 0.0 {
        return edges;
    }
    let mut rng = Xoshiro256pp::new(seed);
    let total_pairs = n as u64 * (n as u64 - 1) / 2;
    let mut idx: u64 = 0;
    loop {
        let skip = if p >= 1.0 { 0 } else { rng.geometric(p) };
        idx = match idx.checked_add(skip) {
            Some(i) => i,
            None => break,
        };
        if idx >= total_pairs {
            break;
        }
        edges.push(pair_from_index(idx, n));
        idx += 1;
    }
    edges
}

/// Maps a linear index in `[0, n(n-1)/2)` to the unordered pair it encodes
/// (row-major over the strict upper triangle).
fn pair_from_index(idx: u64, n: usize) -> (NodeId, NodeId) {
    // Find row u such that the index falls into u's strip of (n-1-u) pairs.
    // Solve quadratically, then correct for rounding.
    let nf = n as f64;
    let i = idx as f64;
    let mut u = (nf - 0.5 - (((nf - 0.5) * (nf - 0.5)) - 2.0 * i).max(0.0).sqrt()).floor() as u64;
    // Strip start of row u: S(u) = u*n - u(u+1)/2
    let strip_start = |u: u64| u * n as u64 - u * (u + 1) / 2;
    while u > 0 && strip_start(u) > idx {
        u -= 1;
    }
    while strip_start(u + 1) <= idx {
        u += 1;
    }
    let v = u + 1 + (idx - strip_start(u));
    (u as NodeId, v as NodeId)
}

/// Erdős–Rényi G(n, m): exactly `m` distinct unordered pairs chosen
/// uniformly (Floyd's sampling over pair indices).
pub fn gnm_edges(n: usize, m: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let total = n as u64 * (n as u64).saturating_sub(1) / 2;
    assert!(
        m as u64 <= total,
        "m = {m} exceeds the {total} possible edges"
    );
    let mut rng = Xoshiro256pp::new(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    // Floyd's algorithm: for j in total-m..total, pick t in [0..j]; if taken,
    // use j itself.
    for j in (total - m as u64)..total {
        let t = rng.range_u64(j + 1);
        let pick = if chosen.insert(t) {
            t
        } else {
            chosen.insert(j);
            j
        };
        edges.push(pair_from_index(pick, n));
    }
    edges
}

/// Barabási–Albert preferential attachment: starts from a clique on
/// `m0 = m` nodes, then each new node attaches `m` edges to existing nodes
/// with probability proportional to degree (repeat-endpoint draws are
/// deduplicated). Produces a connected, heavy-tailed-degree graph — the
/// stand-in for the paper's social-network workloads.
pub fn barabasi_albert_edges(n: usize, m: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    assert!(m >= 1, "attachment degree must be at least 1");
    assert!(n > m, "need more nodes than the initial clique size");
    let mut rng = Xoshiro256pp::new(seed);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * m);
    // Repeated-endpoint list: sampling a uniform element is degree-biased.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    for u in 0..m as NodeId {
        for v in (u + 1)..m as NodeId {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut targets = Vec::with_capacity(m);
    for v in m as NodeId..n as NodeId {
        targets.clear();
        while targets.len() < m {
            let t = endpoints[rng.range_usize(endpoints.len())];
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((t, v));
            endpoints.push(t);
            endpoints.push(v);
        }
    }
    edges
}

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors per
/// side, each edge rewired with probability `beta`.
pub fn watts_strogatz_edges(n: usize, k: usize, beta: f64, seed: u64) -> Vec<(NodeId, NodeId)> {
    assert!(k >= 1 && 2 * k < n, "need 1 ≤ k and 2k < n");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = Xoshiro256pp::new(seed);
    let mut present = std::collections::HashSet::new();
    let norm = |a: NodeId, b: NodeId| if a < b { (a, b) } else { (b, a) };
    for u in 0..n {
        for j in 1..=k {
            present.insert(norm(u as NodeId, ((u + j) % n) as NodeId));
        }
    }
    let originals: Vec<(NodeId, NodeId)> = present.iter().copied().collect();
    for (u, v) in originals {
        if rng.bernoulli(beta) {
            // Rewire the far endpoint to a uniform non-neighbor.
            for _ in 0..32 {
                let w = rng.range_usize(n) as NodeId;
                let cand = norm(u, w);
                if w != u && !present.contains(&cand) {
                    present.remove(&norm(u, v));
                    present.insert(cand);
                    break;
                }
            }
        }
    }
    let mut edges: Vec<_> = present.into_iter().collect();
    edges.sort_unstable();
    edges
}

/// Path `0 − 1 − … − (n−1)`.
pub fn path_edges(n: usize) -> Vec<(NodeId, NodeId)> {
    (0..n.saturating_sub(1))
        .map(|i| (i as NodeId, i as NodeId + 1))
        .collect()
}

/// Cycle on n nodes.
pub fn cycle_edges(n: usize) -> Vec<(NodeId, NodeId)> {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let mut e = path_edges(n);
    e.push((n as NodeId - 1, 0));
    e
}

/// Star with center 0 and n−1 leaves.
pub fn star_edges(n: usize) -> Vec<(NodeId, NodeId)> {
    (1..n).map(|i| (0, i as NodeId)).collect()
}

/// Complete graph on n nodes.
pub fn complete_edges(n: usize) -> Vec<(NodeId, NodeId)> {
    let mut e = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            e.push((u as NodeId, v as NodeId));
        }
    }
    e
}

/// rows × cols 4-neighbor grid; node id is `r * cols + c`.
pub fn grid_edges(rows: usize, cols: usize) -> Vec<(NodeId, NodeId)> {
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut e = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                e.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                e.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    e
}

/// Number of quantization steps for random edge weights.
const WEIGHT_STEPS: usize = 256;

/// Attaches i.i.d. weights `lo + i·(hi−lo)/256`, `i ~ U{0…255}`, to an
/// edge list.
///
/// Weights are *quantized* on purpose: with dyadic `lo`/`hi` (e.g. 0.5,
/// 2.0) every weight — and therefore every shortest-path length — is an
/// exact dyadic rational, so path sums are identical regardless of
/// summation order. The ADS builders rely on exact distance comparisons
/// for their canonical ordering; continuous weights would make forward and
/// transpose traversals disagree in the last ulp.
pub fn assign_uniform_weights(
    edges: &[(NodeId, NodeId)],
    lo: f64,
    hi: f64,
    seed: u64,
) -> Vec<(NodeId, NodeId, f64)> {
    assert!(lo >= 0.0 && hi > lo, "need 0 ≤ lo < hi");
    let mut rng = SplitMix64::new(seed);
    let step = (hi - lo) / WEIGHT_STEPS as f64;
    edges
        .iter()
        .map(|&(u, v)| (u, v, lo + step * rng.range_usize(WEIGHT_STEPS) as f64))
        .collect()
}

/// Convenience: an undirected Barabási–Albert graph.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    Graph::undirected(n, &barabasi_albert_edges(n, m, seed)).expect("generator produces valid ids")
}

/// Convenience: an undirected G(n,p) graph.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    Graph::undirected(n, &gnp_edges(n, p, seed)).expect("generator produces valid ids")
}

/// Convenience: a directed G(n,p) graph — each generated unordered pair
/// yields one arc with a random orientation.
pub fn gnp_directed(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = SplitMix64::new(seed ^ 0x5EED);
    let arcs: Vec<(NodeId, NodeId)> = gnp_edges(n, p, seed)
        .into_iter()
        .map(|(u, v)| if rng.bernoulli(0.5) { (u, v) } else { (v, u) })
        .collect();
    Graph::directed(n, &arcs).expect("generator produces valid ids")
}

/// Convenience: a random weighted directed graph with out-degree ≈ `deg`
/// and quantized `U[lo, hi)` weights (see [`assign_uniform_weights`] for
/// why weights are quantized) — the workhorse for builder-equivalence
/// tests.
pub fn random_weighted_digraph(n: usize, deg: usize, lo: f64, hi: f64, seed: u64) -> Graph {
    let mut rng = Xoshiro256pp::new(seed);
    let step = (hi - lo) / WEIGHT_STEPS as f64;
    let mut arcs = Vec::with_capacity(n * deg);
    for u in 0..n as NodeId {
        for _ in 0..deg {
            let v = rng.range_usize(n) as NodeId;
            if v != u {
                arcs.push((u, v, lo + step * rng.range_usize(WEIGHT_STEPS) as f64));
            }
        }
    }
    Graph::directed_weighted(n, &arcs).expect("generator produces valid ids")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;

    #[test]
    fn pair_from_index_bijective() {
        let n = 9;
        let total = n * (n - 1) / 2;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..total as u64 {
            let (u, v) = pair_from_index(idx, n);
            assert!(u < v && (v as usize) < n, "idx {idx} → ({u},{v})");
            assert!(seen.insert((u, v)), "duplicate pair ({u},{v})");
        }
        assert_eq!(seen.len(), total);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let n = 400;
        let p = 0.05;
        let edges = gnp_edges(n, p, 7);
        let expect = p * (n * (n - 1) / 2) as f64;
        let dev = (edges.len() as f64 - expect).abs() / expect;
        assert!(dev < 0.1, "got {} edges, expected ≈{expect}", edges.len());
        for &(u, v) in &edges {
            assert!(u < v && (v as usize) < n);
        }
    }

    #[test]
    fn gnp_extremes() {
        assert!(gnp_edges(50, 0.0, 1).is_empty());
        let full = gnp_edges(10, 1.0, 1);
        assert_eq!(full.len(), 45);
    }

    #[test]
    fn gnm_exact_count_distinct() {
        let edges = gnm_edges(100, 500, 3);
        assert_eq!(edges.len(), 500);
        let set: std::collections::HashSet<_> = edges.iter().collect();
        assert_eq!(set.len(), 500, "edges must be distinct");
    }

    #[test]
    fn ba_degree_sum_and_connectivity() {
        let n = 500;
        let m = 3;
        let edges = barabasi_albert_edges(n, m, 11);
        // Clique edges + m per added node.
        assert_eq!(edges.len(), m * (m - 1) / 2 + (n - m) * m);
        let g = Graph::undirected(n, &edges).unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.num_components, 1, "BA graph must be connected");
        // Heavy tail: max degree far above m.
        let max_deg = (0..n as NodeId).map(|v| g.out_degree(v)).max().unwrap();
        assert!(max_deg > 4 * m, "max degree {max_deg}");
    }

    #[test]
    fn ws_is_connectedish_and_right_size() {
        let n = 200;
        let k = 3;
        let edges = watts_strogatz_edges(n, k, 0.1, 5);
        assert_eq!(edges.len(), n * k, "rewiring preserves edge count");
        let g = Graph::undirected(n, &edges).unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.num_components, 1);
    }

    #[test]
    fn structured_graphs() {
        assert_eq!(path_edges(4), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(cycle_edges(3).len(), 3);
        assert_eq!(star_edges(4), vec![(0, 1), (0, 2), (0, 3)]);
        assert_eq!(complete_edges(4).len(), 6);
        let grid = grid_edges(2, 3);
        assert_eq!(grid.len(), 3 + 4); // 3 vertical + 4 horizontal
    }

    #[test]
    fn grid_distances_are_manhattan() {
        let g = Graph::undirected(9, &grid_edges(3, 3)).unwrap();
        let d = crate::bfs::bfs_distances(&g, 0);
        assert_eq!(d[8], 4); // corner to corner on 3×3
        assert_eq!(d[4], 2); // center
    }

    #[test]
    fn weights_in_range_and_deterministic() {
        let e = path_edges(100);
        let w1 = assign_uniform_weights(&e, 1.0, 5.0, 9);
        let w2 = assign_uniform_weights(&e, 1.0, 5.0, 9);
        assert_eq!(w1, w2);
        for &(_, _, w) in &w1 {
            assert!((1.0..5.0).contains(&w));
        }
    }

    #[test]
    fn generators_are_seed_deterministic() {
        assert_eq!(gnp_edges(100, 0.1, 4), gnp_edges(100, 0.1, 4));
        assert_ne!(gnp_edges(100, 0.1, 4), gnp_edges(100, 0.1, 5));
        assert_eq!(
            barabasi_albert_edges(100, 2, 4),
            barabasi_albert_edges(100, 2, 4)
        );
    }

    #[test]
    fn random_weighted_digraph_valid() {
        let g = random_weighted_digraph(50, 4, 1.0, 2.0, 13);
        assert!(g.is_weighted());
        assert!(g.num_arcs() <= 200);
        for (_, _, w) in g.all_arcs() {
            assert!((1.0..2.0).contains(&w));
        }
    }
}
