//! Breadth-first search for unweighted (hop-count) distances.
//!
//! [`bfs_visit`] is the unweighted twin of
//! [`crate::dijkstra::dijkstra_visit`]: a level-synchronous search whose
//! visitor can prune, producing on unit-weight graphs the exact same visit
//! sequence as the binary-heap Dijkstra — without paying for the heap.

use std::collections::VecDeque;

use crate::csr::{Graph, NodeId};
use crate::dijkstra::{AdmitAll, FrontierVisitor, Visit};

/// Sentinel for "unreachable" in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// Hop distances from `src` to every node; [`UNREACHABLE`] if no path.
///
/// Edge weights, if present, are ignored — use
/// [`crate::dijkstra::dijkstra_distances`] for weighted distances.
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == UNREACHABLE {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Nodes reachable from `src` (including `src`), sorted by the canonical
/// `(distance, id)` order the sketches are defined over, paired with their
/// hop distance.
pub fn bfs_order_canonical(g: &Graph, src: NodeId) -> Vec<(NodeId, u32)> {
    let dist = bfs_distances(g, src);
    let mut order: Vec<(NodeId, u32)> = dist
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != UNREACHABLE)
        .map(|(v, &d)| (v as NodeId, d))
        .collect();
    order.sort_unstable_by_key(|&(v, d)| (d, v));
    order
}

/// Reusable search state for [`bfs_visit_scratch`]; see
/// [`crate::dijkstra::DijkstraScratch`] for why amortizing the per-source
/// `O(n)` initialization matters.
#[derive(Debug, Clone, Default)]
pub struct BfsScratch {
    seen: Vec<u32>,
    epoch: u32,
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
}

impl BfsScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, n: usize) {
        if self.seen.len() < n {
            self.seen.resize(n, 0);
        }
        self.frontier.clear();
        self.next.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.seen.fill(0);
            self.epoch = 1;
        }
    }
}

/// Pruned level-synchronous BFS from `src`: invokes `visitor(node, depth)`
/// exactly once per reached node, levels in increasing depth and each level
/// in ascending node id.
///
/// The [`Visit`] verdicts mirror [`crate::dijkstra::dijkstra_visit`]:
/// [`Visit::Prune`] skips relaxing the node's out-arcs (nodes reachable
/// only through pruned nodes are discovered later via longer surviving
/// paths, or never), [`Visit::Stop`] aborts the search. On a unit-weight
/// graph the visit sequence is *identical* to `dijkstra_visit` with the
/// same verdicts (that search settles each hop level in ascending id too),
/// so sketch builders can swap one for the other without changing output.
///
/// Edge weights, if present, are ignored — callers should dispatch on
/// [`Graph::is_unit_weight`].
pub fn bfs_visit<F>(g: &Graph, src: NodeId, visitor: F)
where
    F: FnMut(NodeId, u32) -> Visit,
{
    bfs_visit_scratch(g, src, &mut BfsScratch::new(), visitor)
}

/// [`bfs_visit`] with caller-provided scratch state, for tight loops
/// running many single-source searches over the same graph.
pub fn bfs_visit_scratch<F>(g: &Graph, src: NodeId, scratch: &mut BfsScratch, mut visitor: F)
where
    F: FnMut(NodeId, u32) -> Visit,
{
    // Depths are exact small integers, so the f64 round-trip through the
    // unified FrontierVisitor interface is lossless.
    bfs_visit_filtered_scratch(
        g,
        src,
        scratch,
        &mut AdmitAll(|v, d: f64| visitor(v, d as u32)),
    )
}

/// The relax-time-filtered pruned BFS: like [`bfs_visit_scratch`] but every
/// newly discovered node is first offered to [`FrontierVisitor::admit`]
/// (with its depth widened to `f64`, matching the unit-weight distances
/// Dijkstra would produce), and only admitted nodes enter the next-level
/// frontier. The monotone-filter contract on the trait keeps the output
/// identical: BFS discovers each node at its minimal depth, and any later
/// rediscovery would be at the same or greater depth, so a rejected node
/// can be marked seen and never reconsidered.
pub fn bfs_visit_filtered_scratch<V: FrontierVisitor>(
    g: &Graph,
    src: NodeId,
    scratch: &mut BfsScratch,
    vis: &mut V,
) {
    debug_assert!((src as usize) < g.num_nodes());
    scratch.prepare(g.num_nodes());
    let e = scratch.epoch;
    scratch.seen[src as usize] = e;
    scratch.frontier.push(src);
    let mut depth = 0u32;
    while !scratch.frontier.is_empty() {
        // Canonical within-level order: ascending id, matching how the
        // Dijkstra heap pops distance ties.
        scratch.frontier.sort_unstable();
        let next_depth = (depth + 1) as f64;
        for i in 0..scratch.frontier.len() {
            let v = scratch.frontier[i];
            match vis.visit(v, depth as f64) {
                Visit::Stop => return,
                Visit::Prune => continue,
                Visit::Continue => {}
            }
            for &u in g.neighbors(v) {
                if scratch.seen[u as usize] != e {
                    scratch.seen[u as usize] = e;
                    if vis.admit(u, next_depth) {
                        scratch.next.push(u);
                    }
                }
            }
        }
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
        scratch.next.clear();
        depth += 1;
    }
}

/// Number of nodes reachable from `src` (including `src`).
pub fn reachable_count(g: &Graph, src: NodeId) -> usize {
    bfs_distances(g, src)
        .iter()
        .filter(|&&d| d != UNREACHABLE)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> Graph {
        Graph::directed(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn distances_on_path() {
        let d = bfs_distances(&path5(), 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unreachable_marked() {
        let d = bfs_distances(&path5(), 2);
        assert_eq!(d[0], UNREACHABLE);
        assert_eq!(d[1], UNREACHABLE);
        assert_eq!(&d[2..], &[0, 1, 2]);
    }

    #[test]
    fn canonical_order_sorts_ties_by_id() {
        // Star: 0 at the center; all leaves at distance 1.
        let g = Graph::directed(5, &[(0, 4), (0, 2), (0, 3), (0, 1)]).unwrap();
        let order = bfs_order_canonical(&g, 0);
        assert_eq!(order, vec![(0, 0), (1, 1), (2, 1), (3, 1), (4, 1)]);
    }

    #[test]
    fn reachable_counts() {
        assert_eq!(reachable_count(&path5(), 0), 5);
        assert_eq!(reachable_count(&path5(), 3), 2);
    }

    #[test]
    fn bfs_ignores_weights() {
        let g = Graph::directed_weighted(3, &[(0, 1, 100.0), (1, 2, 100.0)]).unwrap();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2]);
    }

    #[test]
    fn cycle_distances() {
        let g = Graph::directed(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(bfs_distances(&g, 1), vec![3, 0, 1, 2]);
    }

    #[test]
    fn visit_prune_cuts_subtree_but_not_siblings() {
        // Path 0→1→2 plus branch 0→3: pruning at 1 keeps 2 unvisited but
        // still reaches 3 (mirrors the dijkstra_visit prune tests).
        let g = Graph::directed(4, &[(0, 1), (1, 2), (0, 3)]).unwrap();
        let mut visited = Vec::new();
        bfs_visit(&g, 0, |v, d| {
            visited.push((v, d));
            if v == 1 {
                Visit::Prune
            } else {
                Visit::Continue
            }
        });
        assert_eq!(visited, vec![(0, 0), (1, 1), (3, 1)]);
    }

    #[test]
    fn visit_stop_aborts() {
        let g = path5();
        let mut count = 0;
        bfs_visit(&g, 0, |_, _| {
            count += 1;
            Visit::Stop
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn visit_reaches_pruned_shadow_via_longer_path() {
        // 0→1→3 and 0→2→…→3 where 1 is pruned: 3 must still be visited,
        // at the depth of the surviving (longer) path — exactly what the
        // pruned Dijkstra does.
        let g = Graph::directed(5, &[(0, 1), (1, 3), (0, 2), (2, 4), (4, 3)]).unwrap();
        let mut visited = Vec::new();
        bfs_visit(&g, 0, |v, d| {
            visited.push((v, d));
            if v == 1 {
                Visit::Prune
            } else {
                Visit::Continue
            }
        });
        assert_eq!(visited, vec![(0, 0), (1, 1), (2, 1), (4, 2), (3, 3)]);
    }

    #[test]
    fn visit_sequence_matches_pruned_dijkstra() {
        // On unit-weight graphs the two searches must produce identical
        // (node, distance) visit sequences under identical prune verdicts —
        // the guarantee the sketch builders' BFS fast path relies on.
        use crate::dijkstra::dijkstra_visit;
        use crate::generators;
        for seed in 0..6u64 {
            let g = generators::gnp_directed(80, 0.05, seed);
            for src in [0u32, 7, 41] {
                // Prune every third visited node — arbitrary but identical
                // for both searches since verdicts depend on (v, count).
                let mut d_seq = Vec::new();
                let mut i = 0usize;
                dijkstra_visit(&g, src, |v, d| {
                    d_seq.push((v, d));
                    i += 1;
                    if i.is_multiple_of(3) {
                        Visit::Prune
                    } else {
                        Visit::Continue
                    }
                });
                let mut b_seq = Vec::new();
                let mut j = 0usize;
                bfs_visit(&g, src, |v, d| {
                    b_seq.push((v, d as f64));
                    j += 1;
                    if j.is_multiple_of(3) {
                        Visit::Prune
                    } else {
                        Visit::Continue
                    }
                });
                assert_eq!(d_seq, b_seq, "seed {seed}, src {src}");
            }
        }
    }

    #[test]
    fn filtered_visit_matches_filtered_dijkstra() {
        // With identical monotone threshold filters, the filtered BFS and
        // the filtered Dijkstra must produce identical admit/visit traces
        // on unit-weight graphs — the guarantee the relax-pruned builder's
        // fast path relies on.
        use crate::dijkstra::{dijkstra_visit_filtered_scratch, DijkstraScratch, FrontierVisitor};
        use crate::generators;
        use adsketch_util::rng::{Rng64, SplitMix64};

        struct Trace<'a> {
            cap: &'a [f64],
            log: Vec<(char, NodeId, f64)>,
        }
        impl FrontierVisitor for Trace<'_> {
            fn admit(&mut self, v: NodeId, d: f64) -> bool {
                let ok = d <= self.cap[v as usize];
                self.log.push((if ok { 'a' } else { 'r' }, v, d));
                ok
            }
            fn visit(&mut self, v: NodeId, d: f64) -> Visit {
                self.log.push(('v', v, d));
                if d <= self.cap[v as usize] {
                    Visit::Continue
                } else {
                    Visit::Prune
                }
            }
        }

        for seed in 0..5u64 {
            let g = generators::gnp_directed(70, 0.06, seed);
            let mut rng = SplitMix64::new(seed + 40);
            let cap: Vec<f64> = (0..70).map(|_| (rng.range_usize(4)) as f64).collect();
            for src in [0u32, 13, 55] {
                let mut bt = Trace {
                    cap: &cap,
                    log: Vec::new(),
                };
                bfs_visit_filtered_scratch(&g, src, &mut BfsScratch::new(), &mut bt);
                let mut dt = Trace {
                    cap: &cap,
                    log: Vec::new(),
                };
                dijkstra_visit_filtered_scratch(&g, src, &mut DijkstraScratch::new(), &mut dt);
                assert_eq!(bt.log, dt.log, "seed {seed}, src {src}");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_clean_across_sources() {
        let g = path5();
        let mut scratch = BfsScratch::new();
        bfs_visit_scratch(&g, 0, &mut scratch, |_, _| Visit::Stop);
        for src in 0..5u32 {
            let mut fresh = Vec::new();
            bfs_visit(&g, src, |v, d| {
                fresh.push((v, d));
                Visit::Continue
            });
            let mut reused = Vec::new();
            bfs_visit_scratch(&g, src, &mut scratch, |v, d| {
                reused.push((v, d));
                Visit::Continue
            });
            assert_eq!(fresh, reused, "src {src}");
        }
    }
}
