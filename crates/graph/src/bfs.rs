//! Breadth-first search for unweighted (hop-count) distances.

use std::collections::VecDeque;

use crate::csr::{Graph, NodeId};

/// Sentinel for "unreachable" in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// Hop distances from `src` to every node; [`UNREACHABLE`] if no path.
///
/// Edge weights, if present, are ignored — use
/// [`crate::dijkstra::dijkstra_distances`] for weighted distances.
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == UNREACHABLE {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Nodes reachable from `src` (including `src`), sorted by the canonical
/// `(distance, id)` order the sketches are defined over, paired with their
/// hop distance.
pub fn bfs_order_canonical(g: &Graph, src: NodeId) -> Vec<(NodeId, u32)> {
    let dist = bfs_distances(g, src);
    let mut order: Vec<(NodeId, u32)> = dist
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != UNREACHABLE)
        .map(|(v, &d)| (v as NodeId, d))
        .collect();
    order.sort_unstable_by_key(|&(v, d)| (d, v));
    order
}

/// Number of nodes reachable from `src` (including `src`).
pub fn reachable_count(g: &Graph, src: NodeId) -> usize {
    bfs_distances(g, src)
        .iter()
        .filter(|&&d| d != UNREACHABLE)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> Graph {
        Graph::directed(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn distances_on_path() {
        let d = bfs_distances(&path5(), 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unreachable_marked() {
        let d = bfs_distances(&path5(), 2);
        assert_eq!(d[0], UNREACHABLE);
        assert_eq!(d[1], UNREACHABLE);
        assert_eq!(&d[2..], &[0, 1, 2]);
    }

    #[test]
    fn canonical_order_sorts_ties_by_id() {
        // Star: 0 at the center; all leaves at distance 1.
        let g = Graph::directed(5, &[(0, 4), (0, 2), (0, 3), (0, 1)]).unwrap();
        let order = bfs_order_canonical(&g, 0);
        assert_eq!(order, vec![(0, 0), (1, 1), (2, 1), (3, 1), (4, 1)]);
    }

    #[test]
    fn reachable_counts() {
        assert_eq!(reachable_count(&path5(), 0), 5);
        assert_eq!(reachable_count(&path5(), 3), 2);
    }

    #[test]
    fn bfs_ignores_weights() {
        let g = Graph::directed_weighted(3, &[(0, 1, 100.0), (1, 2, 100.0)]).unwrap();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2]);
    }

    #[test]
    fn cycle_distances() {
        let g = Graph::directed(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(bfs_distances(&g, 1), vec![3, 0, 1, 2]);
    }
}
