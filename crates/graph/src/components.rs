//! Union-find and weakly connected components.

use crate::csr::{Graph, NodeId};

/// Disjoint-set union with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

/// Result of a connected-components computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Component label per node, in `0..num_components`.
    pub labels: Vec<u32>,
    /// Number of components.
    pub num_components: usize,
}

/// Weakly connected components (arc direction ignored).
pub fn connected_components(g: &Graph) -> Components {
    let n = g.num_nodes();
    let mut uf = UnionFind::new(n);
    for u in 0..n as NodeId {
        for &v in g.neighbors(u) {
            uf.union(u, v);
        }
    }
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        let r = uf.find(v);
        if labels[r as usize] == u32::MAX {
            labels[r as usize] = next;
            next += 1;
        }
        labels[v as usize] = labels[r as usize];
    }
    Components {
        labels,
        num_components: next as usize,
    }
}

/// Nodes of the largest weakly connected component.
pub fn largest_component(g: &Graph) -> Vec<NodeId> {
    let comps = connected_components(g);
    if comps.num_components == 0 {
        return Vec::new();
    }
    let mut counts = vec![0usize; comps.num_components];
    for &l in &comps.labels {
        counts[l as usize] += 1;
    }
    let best = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i as u32)
        .expect("non-empty");
    (0..g.num_nodes() as NodeId)
        .filter(|&v| comps.labels[v as usize] == best)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(!uf.connected(0, 1));
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1));
        assert!(uf.connected(0, 1));
        uf.union(2, 3);
        uf.union(1, 3);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.set_size(3), 4);
        assert_eq!(uf.set_size(4), 1);
    }

    #[test]
    fn components_of_two_paths() {
        let g = Graph::undirected(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.num_components, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(c.labels[0], c.labels[2]);
        assert_ne!(c.labels[0], c.labels[3]);
        assert_ne!(c.labels[3], c.labels[5]);
    }

    #[test]
    fn weak_components_ignore_direction() {
        let g = Graph::directed(3, &[(0, 1), (2, 1)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.num_components, 1);
    }

    #[test]
    fn largest_component_found() {
        let g = Graph::undirected(7, &[(0, 1), (1, 2), (2, 3), (4, 5)]).unwrap();
        assert_eq!(largest_component(&g), vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_graph_components() {
        let g = Graph::directed(0, &[]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.num_components, 0);
        assert!(largest_component(&g).is_empty());
    }
}
