//! Exact ground truth: the quantities the sketches estimate.
//!
//! Everything here is brute force (one shortest-path tree per query node)
//! and intended for validation and experiment baselines on small/medium
//! graphs, not for production-scale graphs — that is what the sketches are
//! for.

use crate::csr::{Graph, NodeId};
use crate::dijkstra::dijkstra_distances;

/// A node's exact cumulative neighborhood function: the sorted distinct
/// distances `d` with `|N_d(v)|` (number of nodes within distance `d`,
/// including `v`).
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborhoodFunction {
    /// Ascending distinct distances, starting at 0.0 (the node itself).
    pub distances: Vec<f64>,
    /// `counts[i]` = number of nodes within `distances[i]`.
    pub counts: Vec<u64>,
}

impl NeighborhoodFunction {
    /// `|N_d(v)|` via binary search over the step function.
    pub fn cardinality_at(&self, d: f64) -> u64 {
        match self.distances.binary_search_by(|x| x.total_cmp(&d)) {
            Ok(i) => self.counts[i],
            Err(0) => 0,
            Err(i) => self.counts[i - 1],
        }
    }

    /// Number of reachable nodes (including the source).
    pub fn reachable(&self) -> u64 {
        self.counts.last().copied().unwrap_or(0)
    }
}

/// Exact neighborhood function of `v` (forward distances).
pub fn neighborhood_function(g: &Graph, v: NodeId) -> NeighborhoodFunction {
    let dist = dijkstra_distances(g, v);
    let mut ds: Vec<f64> = dist.iter().copied().filter(|d| d.is_finite()).collect();
    ds.sort_unstable_by(f64::total_cmp);
    let mut distances = Vec::new();
    let mut counts = Vec::new();
    let mut count = 0u64;
    for d in ds {
        count += 1;
        if distances.last().is_some_and(|&last: &f64| last == d) {
            *counts.last_mut().expect("non-empty") = count;
        } else {
            distances.push(d);
            counts.push(count);
        }
    }
    NeighborhoodFunction { distances, counts }
}

/// Exact sum of forward distances from `v` to all reachable nodes — the
/// inverse of classic closeness centrality (Bavelas).
pub fn sum_of_distances(g: &Graph, v: NodeId) -> f64 {
    dijkstra_distances(g, v)
        .iter()
        .filter(|d| d.is_finite())
        .sum()
}

/// Exact harmonic centrality `Σ_{j≠v, d_vj<∞} 1/d_vj`.
pub fn harmonic_centrality(g: &Graph, v: NodeId) -> f64 {
    dijkstra_distances(g, v)
        .iter()
        .filter(|d| d.is_finite() && **d > 0.0)
        .map(|d| 1.0 / d)
        .sum()
}

/// Exact distance-decay centrality `Σ_j α(d_vj)·β(j)` over reachable `j`
/// (the paper's `C_{α,β}(v)`, equation (2)); `α(0)` applies to `v` itself.
pub fn centrality_exact<A, B>(g: &Graph, v: NodeId, alpha: A, beta: B) -> f64
where
    A: Fn(f64) -> f64,
    B: Fn(NodeId) -> f64,
{
    dijkstra_distances(g, v)
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_finite())
        .map(|(j, &d)| alpha(d) * beta(j as NodeId))
        .sum()
}

/// The whole-graph distance distribution: for each distinct finite distance
/// `d`, the number of ordered pairs `(i, j)`, `i ≠ j`, with `d_ij ≤ d`
/// (the quantity ANF/HyperANF approximate). O(n · SSSP) — small graphs only.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceDistribution {
    /// Ascending distinct distances (> 0).
    pub distances: Vec<f64>,
    /// Cumulative ordered-pair counts.
    pub pairs: Vec<u64>,
}

impl DistanceDistribution {
    /// Total number of connected ordered pairs.
    pub fn connected_pairs(&self) -> u64 {
        self.pairs.last().copied().unwrap_or(0)
    }

    /// The effective diameter at quantile `q` (e.g. 0.9): the smallest
    /// distance `d` such that at least a `q` fraction of connected pairs
    /// are within distance `d`.
    pub fn effective_diameter(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        let total = self.connected_pairs();
        if total == 0 {
            return 0.0;
        }
        let need = (q * total as f64).ceil() as u64;
        for (d, &c) in self.distances.iter().zip(self.pairs.iter()) {
            if c >= need {
                return *d;
            }
        }
        *self.distances.last().expect("non-empty")
    }
}

/// Exact distance distribution of the whole graph.
pub fn distance_distribution(g: &Graph) -> DistanceDistribution {
    let n = g.num_nodes();
    let mut all: Vec<f64> = Vec::new();
    for v in 0..n as NodeId {
        for (j, d) in dijkstra_distances(g, v).into_iter().enumerate() {
            if d.is_finite() && j as NodeId != v {
                all.push(d);
            }
        }
    }
    all.sort_unstable_by(f64::total_cmp);
    let mut distances = Vec::new();
    let mut pairs = Vec::new();
    let mut count = 0u64;
    for d in all {
        count += 1;
        if distances.last().is_some_and(|&last: &f64| last == d) {
            *pairs.last_mut().expect("non-empty") = count;
        } else {
            distances.push(d);
            pairs.push(count);
        }
    }
    DistanceDistribution { distances, pairs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::directed(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn neighborhood_function_on_path() {
        let nf = neighborhood_function(&path4(), 0);
        assert_eq!(nf.distances, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(nf.counts, vec![1, 2, 3, 4]);
        assert_eq!(nf.cardinality_at(0.0), 1);
        assert_eq!(nf.cardinality_at(1.5), 2);
        assert_eq!(nf.cardinality_at(99.0), 4);
        assert_eq!(nf.cardinality_at(-1.0), 0);
        assert_eq!(nf.reachable(), 4);
    }

    #[test]
    fn neighborhood_function_merges_ties() {
        let g = Graph::directed(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let nf = neighborhood_function(&g, 0);
        assert_eq!(nf.distances, vec![0.0, 1.0]);
        assert_eq!(nf.counts, vec![1, 4]);
    }

    #[test]
    fn sum_of_distances_on_path() {
        assert_eq!(sum_of_distances(&path4(), 0), 6.0);
        assert_eq!(sum_of_distances(&path4(), 3), 0.0);
    }

    #[test]
    fn harmonic_centrality_on_path() {
        let h = harmonic_centrality(&path4(), 0);
        assert!((h - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn centrality_exact_with_filter() {
        // β selects only odd nodes; α is a distance-1 threshold.
        let g = Graph::directed(4, &[(0, 1), (0, 2), (1, 3)]).unwrap();
        let c = centrality_exact(
            &g,
            0,
            |d| if d <= 1.0 { 1.0 } else { 0.0 },
            |j| if j % 2 == 1 { 1.0 } else { 0.0 },
        );
        assert_eq!(c, 1.0); // only node 1 is odd and within distance 1
    }

    #[test]
    fn centrality_exact_exponential_decay_matches_manual() {
        let g = path4();
        let c = centrality_exact(&g, 0, |d| 0.5f64.powf(d), |_| 1.0);
        assert!((c - (1.0 + 0.5 + 0.25 + 0.125)).abs() < 1e-12);
    }

    #[test]
    fn distance_distribution_on_undirected_path() {
        let g = Graph::undirected(3, &[(0, 1), (1, 2)]).unwrap();
        let dd = distance_distribution(&g);
        // Ordered pairs: (0,1),(1,0),(1,2),(2,1) at d=1; (0,2),(2,0) at d=2.
        assert_eq!(dd.distances, vec![1.0, 2.0]);
        assert_eq!(dd.pairs, vec![4, 6]);
        assert_eq!(dd.connected_pairs(), 6);
        assert_eq!(dd.effective_diameter(0.5), 1.0);
        assert_eq!(dd.effective_diameter(1.0), 2.0);
    }

    #[test]
    fn effective_diameter_empty() {
        let g = Graph::directed(3, &[]).unwrap();
        let dd = distance_distribution(&g);
        assert_eq!(dd.connected_pairs(), 0);
        assert_eq!(dd.effective_diameter(0.9), 0.0);
    }

    #[test]
    fn effective_diameter_on_grid() {
        // 5×5 grid: diameter 8; the q=1.0 effective diameter equals it.
        let g = Graph::undirected(25, &crate::generators::grid_edges(5, 5)).unwrap();
        let dd = distance_distribution(&g);
        assert_eq!(dd.effective_diameter(1.0), 8.0);
        assert!(dd.effective_diameter(0.5) < 8.0);
        // Quantiles are monotone.
        let mut last = 0.0;
        for q in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let e = dd.effective_diameter(q);
            assert!(e >= last);
            last = e;
        }
    }

    #[test]
    fn directed_distance_distribution_asymmetric() {
        // Directed path: only forward pairs are connected.
        let g = Graph::directed(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let dd = distance_distribution(&g);
        assert_eq!(dd.connected_pairs(), 6); // 3+2+1 ordered pairs
    }

    #[test]
    fn weighted_distances_respected() {
        let g = Graph::directed_weighted(3, &[(0, 1, 2.5), (1, 2, 0.5)]).unwrap();
        let nf = neighborhood_function(&g, 0);
        assert_eq!(nf.distances, vec![0.0, 2.5, 3.0]);
        assert_eq!(sum_of_distances(&g, 0), 5.5);
    }
}
