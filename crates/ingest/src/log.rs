//! The append-only edge-stream log.
//!
//! Edges are journaled as fixed-width records in numbered **segment**
//! files (`seg-00000000.adsl`, `seg-00000001.adsl`, …), each at most
//! [`EdgeLog::segment_cap`] records long. A segment starts with a
//! 20-byte header — magic `ADSKELG1`, a `u32` format version, and the
//! `u64` sequence number of its first record — followed by 24-byte
//! records: `u32 u`, `u32 v`, `u64 w.to_bits()`, then the `u64` running
//! FNV-1a digest of the segment header and every record payload up to
//! and including this one. The **chained** digest means a record
//! validates only if everything before it in the segment does, so replay
//! can stop at the first bad byte knowing the prefix it kept is exactly
//! what was written.
//!
//! # Recovery contract
//!
//! [`EdgeLog::open`] replays every segment in order and returns the
//! recovered entries. A torn tail (partial record or digest mismatch) is
//! legal **only on the last segment** — that is the one a crash can
//! interrupt mid-append — and is repaired by truncating the file back to
//! its longest valid prefix. The same damage on an earlier segment, a
//! bad magic, or a sequence-number gap between segments is corruption
//! and fails the open with a typed [`IngestError`]; an edge log never
//! silently drops interior history.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use adsketch_core::frozen::Fnv1a64;

use crate::IngestError;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"ADSKELG1";

/// The on-disk format version this build writes and replays.
pub const LOG_VERSION: u32 = 1;

/// Segment header length: magic + version + base sequence.
const HEADER_LEN: usize = 20;

/// Record length: `u`, `v`, weight bits, chained digest.
const RECORD_LEN: usize = 24;

/// One replayed edge insertion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeLogEntry {
    /// Position in the stream (0-based, contiguous across segments).
    pub seq: u64,
    /// Source endpoint.
    pub u: u32,
    /// Target endpoint.
    pub v: u32,
    /// Edge weight (round-trips bit-exactly through the log).
    pub w: f64,
}

/// The append-only, segmented, checksummed edge journal.
#[derive(Debug)]
pub struct EdgeLog {
    dir: PathBuf,
    segment_cap: u64,
    writer: BufWriter<File>,
    /// Running digest over the open segment's header + record payloads.
    hasher: Fnv1a64,
    segment_index: u64,
    segment_records: u64,
    next_seq: u64,
}

fn segment_file_name(index: u64) -> String {
    format!("seg-{index:08}.adsl")
}

/// One replayed segment: its base sequence, the decoded payloads, the
/// byte length of the valid prefix, and the digest state after the last
/// valid record (so appends can resume the chain).
struct ReplayedSegment {
    base_seq: u64,
    entries: Vec<(u32, u32, f64)>,
    valid_len: u64,
    hasher: Fnv1a64,
}

fn replay_segment(path: &Path) -> Result<ReplayedSegment, IngestError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < HEADER_LEN || bytes[..8] != SEGMENT_MAGIC {
        return Err(IngestError::BadMagic { path: path.into() });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != LOG_VERSION {
        return Err(IngestError::BadVersion {
            path: path.into(),
            version,
        });
    }
    let base_seq = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let mut hasher = Fnv1a64::new();
    hasher.update(&bytes[..HEADER_LEN]);
    let mut entries = Vec::new();
    let mut valid_len = HEADER_LEN as u64;
    for rec in bytes[HEADER_LEN..].chunks(RECORD_LEN) {
        if rec.len() < RECORD_LEN {
            break; // partial trailing record: torn tail
        }
        let mut probe = hasher.clone();
        probe.update(&rec[..16]);
        let stored = u64::from_le_bytes(rec[16..24].try_into().expect("8 bytes"));
        if probe.digest() != stored {
            break; // chain breaks here: everything after is untrusted
        }
        hasher = probe;
        entries.push((
            u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes")),
            u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes")),
            f64::from_bits(u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes"))),
        ));
        valid_len += RECORD_LEN as u64;
    }
    Ok(ReplayedSegment {
        base_seq,
        entries,
        valid_len,
        hasher,
    })
}

impl EdgeLog {
    /// Opens (creating if absent) the edge log in `dir`, replaying every
    /// segment and repairing a torn tail on the last one. Returns the
    /// log positioned to append after the recovered history, plus the
    /// recovered entries in stream order.
    ///
    /// `segment_cap` is the record count at which the writer rotates to
    /// a new segment file; it applies to newly written segments and
    /// does not need to match the cap the existing segments were
    /// written with.
    pub fn open(
        dir: impl AsRef<Path>,
        segment_cap: u64,
    ) -> Result<(Self, Vec<EdgeLogEntry>), IngestError> {
        assert!(segment_cap >= 1, "segment capacity must be ≥ 1");
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut segs: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if let Some(idx) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".adsl"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                segs.push((idx, path));
            }
        }
        segs.sort_unstable_by_key(|&(idx, _)| idx);

        let mut entries: Vec<EdgeLogEntry> = Vec::new();
        let mut tail: Option<(u64, PathBuf, u64, u64, Fnv1a64)> = None;
        for (pos, (idx, path)) in segs.iter().enumerate() {
            let seg = replay_segment(path)?;
            if seg.base_seq != entries.len() as u64 {
                return Err(IngestError::SeqGap {
                    expected: entries.len() as u64,
                    found: seg.base_seq,
                });
            }
            let file_len = std::fs::metadata(path)?.len();
            if seg.valid_len != file_len && pos + 1 != segs.len() {
                return Err(IngestError::TornLog {
                    path: path.clone(),
                    detail: format!(
                        "interior segment valid up to byte {} of {file_len}",
                        seg.valid_len
                    ),
                });
            }
            for (i, &(u, v, w)) in seg.entries.iter().enumerate() {
                entries.push(EdgeLogEntry {
                    seq: seg.base_seq + i as u64,
                    u,
                    v,
                    w,
                });
            }
            tail = Some((
                *idx,
                path.clone(),
                seg.valid_len,
                seg.entries.len() as u64,
                seg.hasher,
            ));
        }

        let next_seq = entries.len() as u64;
        let log = match tail {
            // Resume the last segment if it still has room under the
            // *current* cap; otherwise rotate past it.
            Some((idx, path, valid_len, records, hasher)) if records < segment_cap => {
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(valid_len)?; // drop any torn tail
                let mut writer = BufWriter::new(file);
                writer.seek_end()?;
                EdgeLog {
                    dir,
                    segment_cap,
                    writer,
                    hasher,
                    segment_index: idx,
                    segment_records: records,
                    next_seq,
                }
            }
            Some((idx, path, valid_len, _records, _)) => {
                // Full (or over-full under a smaller cap): repair the
                // tail in place, then start a fresh segment.
                OpenOptions::new()
                    .write(true)
                    .open(&path)?
                    .set_len(valid_len)?;
                Self::fresh_segment(dir, segment_cap, idx + 1, next_seq)?
            }
            None => Self::fresh_segment(dir, segment_cap, 0, 0)?,
        };
        Ok((log, entries))
    }

    fn fresh_segment(
        dir: PathBuf,
        segment_cap: u64,
        segment_index: u64,
        base_seq: u64,
    ) -> Result<EdgeLog, IngestError> {
        let path = dir.join(segment_file_name(segment_index));
        let mut header = [0u8; HEADER_LEN];
        header[..8].copy_from_slice(&SEGMENT_MAGIC);
        header[8..12].copy_from_slice(&LOG_VERSION.to_le_bytes());
        header[12..20].copy_from_slice(&base_seq.to_le_bytes());
        let mut writer = BufWriter::new(File::create(&path)?);
        writer.write_all(&header)?;
        let mut hasher = Fnv1a64::new();
        hasher.update(&header);
        Ok(EdgeLog {
            dir,
            segment_cap,
            writer,
            hasher,
            segment_index,
            segment_records: 0,
            next_seq: base_seq,
        })
    }

    /// Journals one edge insertion and returns its sequence number.
    /// Rotates to a new segment when the open one is full. Buffered —
    /// call [`EdgeLog::flush`] to push records to the OS.
    pub fn append(&mut self, u: u32, v: u32, w: f64) -> Result<u64, IngestError> {
        if self.segment_records == self.segment_cap {
            self.writer.flush()?;
            *self = Self::fresh_segment(
                std::mem::take(&mut self.dir),
                self.segment_cap,
                self.segment_index + 1,
                self.next_seq,
            )?;
        }
        let mut rec = [0u8; RECORD_LEN];
        rec[0..4].copy_from_slice(&u.to_le_bytes());
        rec[4..8].copy_from_slice(&v.to_le_bytes());
        rec[8..16].copy_from_slice(&w.to_bits().to_le_bytes());
        self.hasher.update(&rec[..16]);
        rec[16..24].copy_from_slice(&self.hasher.digest().to_le_bytes());
        self.writer.write_all(&rec)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.segment_records += 1;
        Ok(seq)
    }

    /// Flushes buffered records to the OS (no fsync — the recovery
    /// contract already tolerates a torn tail).
    pub fn flush(&mut self) -> Result<(), IngestError> {
        self.writer.flush()?;
        Ok(())
    }

    /// The sequence number the next [`EdgeLog::append`] will return —
    /// equal to the number of edges ever journaled.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The number of segment files written so far (the open one
    /// included).
    pub fn segments(&self) -> u64 {
        self.segment_index + 1
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records per segment before the writer rotates.
    pub fn segment_cap(&self) -> u64 {
        self.segment_cap
    }
}

/// `BufWriter<File>` has no stable "seek to end" shorthand; this keeps
/// the call sites readable.
trait SeekEnd {
    fn seek_end(&mut self) -> std::io::Result<()>;
}

impl SeekEnd for BufWriter<File> {
    fn seek_end(&mut self) -> std::io::Result<()> {
        use std::io::Seek;
        self.seek(std::io::SeekFrom::End(0)).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("adsketch_ingest_log_{tag}_{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn fill(log: &mut EdgeLog, n: u64) {
        for i in 0..n {
            let seq = log
                .append(i as u32, (i * 7 % 100) as u32, 0.5 + i as f64)
                .unwrap();
            assert_eq!(seq, log.next_seq() - 1);
        }
        log.flush().unwrap();
    }

    #[test]
    fn roundtrips_across_segments() {
        let s = Scratch::new("roundtrip");
        let (mut log, replayed) = EdgeLog::open(&s.0, 10).unwrap();
        assert!(replayed.is_empty());
        fill(&mut log, 37);
        assert_eq!(log.segments(), 4); // 10 + 10 + 10 + 7
        drop(log);
        let (log, replayed) = EdgeLog::open(&s.0, 10).unwrap();
        assert_eq!(log.next_seq(), 37);
        assert_eq!(replayed.len(), 37);
        for (i, e) in replayed.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.u, i as u32);
            assert_eq!(e.v, (i * 7 % 100) as u32);
            assert_eq!(e.w.to_bits(), (0.5 + i as f64).to_bits());
        }
    }

    #[test]
    fn weight_bits_roundtrip_exactly() {
        let s = Scratch::new("bits");
        let (mut log, _) = EdgeLog::open(&s.0, 100).unwrap();
        // An exotic but valid weight: subnormal.
        log.append(1, 2, f64::from_bits(0x0000_0000_0000_0001))
            .unwrap();
        log.append(3, 4, 0.0).unwrap();
        log.flush().unwrap();
        drop(log);
        let (_, replayed) = EdgeLog::open(&s.0, 100).unwrap();
        assert_eq!(replayed[0].w.to_bits(), 1);
        assert_eq!(replayed[1].w.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn torn_tail_on_last_segment_recovers_prefix() {
        let s = Scratch::new("torn");
        let (mut log, _) = EdgeLog::open(&s.0, 100).unwrap();
        fill(&mut log, 5);
        drop(log);
        // Simulate a crash mid-append: garbage half-record at the tail.
        let path = s.0.join(segment_file_name(0));
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xde, 0xad, 0xbe, 0xef, 0x01]).unwrap();
        drop(f);
        let (mut log, replayed) = EdgeLog::open(&s.0, 100).unwrap();
        assert_eq!(replayed.len(), 5);
        assert_eq!(log.next_seq(), 5);
        // The tail was truncated and the chain resumes cleanly.
        fill(&mut log, 3);
        drop(log);
        let (_, replayed) = EdgeLog::open(&s.0, 100).unwrap();
        assert_eq!(replayed.len(), 8);
    }

    #[test]
    fn corrupt_record_cuts_the_chain_there() {
        let s = Scratch::new("chain");
        let (mut log, _) = EdgeLog::open(&s.0, 100).unwrap();
        fill(&mut log, 6);
        drop(log);
        // Flip a payload byte of record 3: records 3..6 all become
        // untrusted (the digests chain), only 0..3 survive.
        let path = s.0.join(segment_file_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN + 3 * RECORD_LEN] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replayed) = EdgeLog::open(&s.0, 100).unwrap();
        assert_eq!(replayed.len(), 3);
    }

    #[test]
    fn interior_corruption_is_an_error_not_silence() {
        let s = Scratch::new("interior");
        let (mut log, _) = EdgeLog::open(&s.0, 4).unwrap();
        fill(&mut log, 10); // segments: 4 + 4 + 2
        drop(log);
        let path = s.0.join(segment_file_name(1));
        let mut bytes = std::fs::read(&path).unwrap();
        let len = bytes.len();
        bytes[len - 9] ^= 0x01; // damage the middle segment's last record
        std::fs::write(&path, &bytes).unwrap();
        match EdgeLog::open(&s.0, 4) {
            Err(IngestError::TornLog { .. }) => {}
            other => panic!("expected TornLog, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let s = Scratch::new("magic");
        let (log, _) = EdgeLog::open(&s.0, 4).unwrap();
        drop(log);
        std::fs::write(s.0.join(segment_file_name(0)), b"NOTALOG!").unwrap();
        match EdgeLog::open(&s.0, 4) {
            Err(IngestError::BadMagic { .. }) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn missing_segment_is_a_seq_gap() {
        let s = Scratch::new("gap");
        let (mut log, _) = EdgeLog::open(&s.0, 3).unwrap();
        fill(&mut log, 9);
        drop(log);
        std::fs::remove_file(s.0.join(segment_file_name(1))).unwrap();
        match EdgeLog::open(&s.0, 3) {
            Err(IngestError::SeqGap {
                expected: 3,
                found: 6,
            }) => {}
            other => panic!("expected SeqGap, got {other:?}"),
        }
    }
}
