//! Dynamic-graph ingest: the edge-stream log, incremental ADS
//! maintenance, and the generational freezer.
//!
//! The serving tiers below this crate are built around **immutable**
//! frozen stores. This crate is where mutation lives: edges arrive as a
//! stream, are journaled to an append-only [`EdgeLog`], and are applied
//! one at a time to a [`adsketch_core::DynamicAds`] whose sketches stay
//! **bitwise identical** to a from-scratch batch build after every
//! single insertion (the workspace's standing invariant, extended to
//! dynamic graphs). A background [`Freezer`] periodically snapshots the
//! live sketches into numbered frozen *generations* — ordinary sharded
//! store directories any loader can open — while ingest continues, and a
//! serving process hot-swaps to each new generation with
//! `adsketch_serve::GenerationStore`.
//!
//! | module | contents |
//! |---|---|
//! | [`log`] | [`EdgeLog`]: segmented append-only edge journal (magic `ADSKELG1`), chained FNV-1a checksums, torn-tail crash recovery |
//! | [`pipeline`] | [`Ingestor`]: log + [`adsketch_core::DynamicAds`] + per-stream distinct/recency counters, replay-on-open |
//! | [`freezer`] | [`Freezer`]: numbered `gen-NNNN/` sharded stores, atomic `CURRENT` pointer, background freeze thread |
//!
//! # Crash safety
//!
//! Edges are applied to the in-memory sketches first and journaled
//! immediately after, so the log is always a *prefix* of what was
//! applied: a crash loses at most the unflushed suffix, never invents
//! edges, and [`Ingestor::open`] rebuilds exactly the logged prefix by
//! replay (incremental maintenance is deterministic, so the rebuilt
//! sketches are bitwise the ones that were live). The last log segment
//! may be torn mid-record by a crash; recovery keeps its longest valid
//! checksummed prefix and truncates the rest. Frozen generations are
//! immutable once written and `CURRENT` is flipped by atomic rename, so
//! a crash mid-freeze leaves at worst an orphaned partial directory the
//! next freeze overwrites — never a half-published generation.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod freezer;
pub mod log;
pub mod pipeline;

pub use freezer::{current_generation, spawn_freezer, Freezer, FreezerHandle, FrozenGeneration};
pub use log::{EdgeLog, EdgeLogEntry};
pub use pipeline::{IngestStats, Ingestor};

/// Everything that can go wrong in the ingest tier.
#[derive(Debug)]
pub enum IngestError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A sketch-maintenance failure (bad edge, bad parameters).
    Core(adsketch_core::CoreError),
    /// A freeze failure from the frozen-store writer.
    Frozen(adsketch_core::FrozenError),
    /// A log segment file does not start with the `ADSKELG1` magic.
    BadMagic {
        /// The offending segment file.
        path: std::path::PathBuf,
    },
    /// A log segment carries a version this build cannot replay.
    BadVersion {
        /// The offending segment file.
        path: std::path::PathBuf,
        /// The version the segment header claims.
        version: u32,
    },
    /// A log segment other than the last is truncated or fails its
    /// chained checksum — torn tails are only survivable on the final
    /// segment (a crash interrupts at most one append).
    TornLog {
        /// The offending segment file.
        path: std::path::PathBuf,
        /// What the replayer found.
        detail: String,
    },
    /// Segment base sequence numbers don't chain contiguously — a
    /// segment file is missing or replayed out of order.
    SeqGap {
        /// The sequence number the next segment should start at.
        expected: u64,
        /// The base sequence its header actually claims.
        found: u64,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingest I/O error: {e}"),
            IngestError::Core(e) => write!(f, "sketch maintenance error: {e}"),
            IngestError::Frozen(e) => write!(f, "freeze error: {e}"),
            IngestError::BadMagic { path } => {
                write!(
                    f,
                    "{} is not an edge-log segment (bad magic)",
                    path.display()
                )
            }
            IngestError::BadVersion { path, version } => write!(
                f,
                "{} has unsupported edge-log version {version}",
                path.display()
            ),
            IngestError::TornLog { path, detail } => {
                write!(f, "torn edge log at {}: {detail}", path.display())
            }
            IngestError::SeqGap { expected, found } => write!(
                f,
                "edge-log segment gap: expected base sequence {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Core(e) => Some(e),
            IngestError::Frozen(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<adsketch_core::CoreError> for IngestError {
    fn from(e: adsketch_core::CoreError) -> Self {
        IngestError::Core(e)
    }
}

impl From<adsketch_core::FrozenError> for IngestError {
    fn from(e: adsketch_core::FrozenError) -> Self {
        IngestError::Frozen(e)
    }
}
