//! The ingest pipeline: journal + live sketches + stream counters.
//!
//! An [`Ingestor`] owns one [`EdgeLog`] and one
//! [`adsketch_core::DynamicAds`] and keeps them in lockstep: every
//! accepted edge is applied to the sketches and journaled, in that
//! order, so the log is always a replayable prefix of the applied
//! stream (see the crate docs for the crash-safety argument). Because
//! incremental maintenance is exact — the sketches after `m` insertions
//! are bitwise the batch build of those `m` edges — replaying the log
//! into a fresh `DynamicAds` reproduces the live sketches bit for bit.
//!
//! Alongside the graph sketches, the ingestor feeds the edge stream's
//! endpoints into the stream tier's distinct counters
//! ([`FirstOccurrenceAds`], [`RecencyAds`]) with the edge sequence
//! number as the timestamp, so freezer stats can report (estimated) how
//! many distinct nodes the stream has ever touched and how many it
//! touched recently — at `O(k)` memory, without scanning the graph.

use std::path::Path;

use adsketch_core::{AdsSet, DynamicAds};
use adsketch_stream::streaming_ads::{FirstOccurrenceAds, RecencyAds};

use crate::log::{EdgeLog, EdgeLogEntry};
use crate::IngestError;

/// Seed domain separators so the stream counters draw ranks independent
/// of the graph sketches'.
const TOUCHED_SEED_TAG: u64 = 0x746f_7563_6865_6421; // "touched!"
const RECENT_SEED_TAG: u64 = 0x7265_6365_6e74_6c79; // "recently"

/// Point-in-time counters over the ingested stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestStats {
    /// Edges applied to the live sketches (= edges journaled).
    pub edges: u64,
    /// Estimated distinct nodes ever touched by any edge endpoint.
    pub distinct_endpoints: f64,
    /// Estimated distinct nodes touched by the last `window` edges (the
    /// window the stats were asked with).
    pub recent_endpoints: f64,
}

/// The ingest pipeline: edge journal + incremental ADS + stream
/// counters, opened from (and recovered by) the log directory.
#[derive(Debug)]
pub struct Ingestor {
    log: EdgeLog,
    ads: DynamicAds,
    touched: FirstOccurrenceAds,
    recent: RecencyAds,
}

impl Ingestor {
    /// Opens the ingest pipeline over the edge log in `dir`, replaying
    /// any recovered history into a fresh `n`-node, parameter-`k`
    /// incremental sketch set. Deterministic: the same log, `n`, `k`,
    /// and `seed` always rebuild bitwise-identical sketches.
    pub fn open(
        dir: impl AsRef<Path>,
        n: usize,
        k: usize,
        seed: u64,
        segment_cap: u64,
    ) -> Result<Self, IngestError> {
        let (log, replayed) = EdgeLog::open(dir, segment_cap)?;
        let mut ingestor = Ingestor {
            log,
            ads: DynamicAds::new(n, k, seed),
            touched: FirstOccurrenceAds::new(k, seed ^ TOUCHED_SEED_TAG),
            recent: RecencyAds::new(k, seed ^ RECENT_SEED_TAG),
        };
        for EdgeLogEntry { seq, u, v, w } in replayed {
            ingestor.ads.insert_edge(u, v, w)?;
            ingestor.observe_endpoints(u, v, seq);
        }
        Ok(ingestor)
    }

    fn observe_endpoints(&mut self, u: u32, v: u32, seq: u64) {
        let t = seq as f64;
        self.touched.observe(u64::from(u), t);
        self.touched.observe(u64::from(v), t);
        self.recent.observe(u64::from(u), t);
        self.recent.observe(u64::from(v), t);
    }

    /// Applies one edge to the live sketches, journals it, and feeds the
    /// stream counters. Returns the edge's sequence number. A rejected
    /// edge (endpoint out of range, bad weight) changes nothing and is
    /// **not** journaled.
    pub fn ingest(&mut self, u: u32, v: u32, w: f64) -> Result<u64, IngestError> {
        self.ads.insert_edge(u, v, w)?;
        let seq = self.log.append(u, v, w)?;
        self.observe_endpoints(u, v, seq);
        Ok(seq)
    }

    /// Flushes the journal's buffered records to the OS.
    pub fn flush(&mut self) -> Result<(), IngestError> {
        self.log.flush()
    }

    /// Edges applied so far (and journaled — the two never diverge by
    /// more than the in-flight call).
    pub fn edges(&self) -> u64 {
        self.ads.edges_applied()
    }

    /// The live incremental sketch set.
    pub fn ads(&self) -> &DynamicAds {
        &self.ads
    }

    /// The underlying journal (segment count, directory, …).
    pub fn log(&self) -> &EdgeLog {
        &self.log
    }

    /// A frozen-format-ready copy of the live sketches — bitwise the
    /// batch build of every edge ingested so far.
    pub fn snapshot(&self) -> AdsSet {
        self.ads.snapshot()
    }

    /// Stream counters at this instant; `window` is the number of most
    /// recent edges the recency estimate covers.
    pub fn stats(&self, window: u64) -> IngestStats {
        let edges = self.edges();
        let t_min = edges.saturating_sub(window) as f64;
        IngestStats {
            edges,
            distinct_endpoints: self.touched.distinct(),
            recent_endpoints: self.recent.distinct_since(t_min),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_core::CoreError;
    use adsketch_graph::{generators, Graph};
    use std::path::PathBuf;

    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("adsketch_ingest_pipe_{tag}_{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn sample_edges(n: u32, m: usize, seed: u64) -> Vec<(u32, u32, f64)> {
        let g = generators::random_weighted_digraph(n as usize, 3, 0.5, 2.5, seed);
        let mut edges = Vec::new();
        for u in 0..g.num_nodes() as u32 {
            for (v, w) in g.arcs(u) {
                edges.push((u, v, w));
            }
        }
        edges.truncate(m);
        edges
    }

    #[test]
    fn ingest_matches_batch_build_bitwise() {
        let s = Scratch::new("batch");
        let edges = sample_edges(50, 160, 11);
        let mut ing = Ingestor::open(&s.0, 50, 4, 77, 64).unwrap();
        for &(u, v, w) in &edges {
            ing.ingest(u, v, w).unwrap();
        }
        let oracle = AdsSet::build(&Graph::directed_weighted(50, &edges).unwrap(), 4, 77);
        assert_eq!(ing.snapshot(), oracle);
    }

    #[test]
    fn reopen_replays_to_identical_sketches_and_counters() {
        let s = Scratch::new("reopen");
        let edges = sample_edges(40, 120, 5);
        let mut ing = Ingestor::open(&s.0, 40, 4, 9, 32).unwrap();
        for &(u, v, w) in &edges {
            ing.ingest(u, v, w).unwrap();
        }
        ing.flush().unwrap();
        let live = ing.snapshot();
        let live_stats = ing.stats(50);
        drop(ing);
        let recovered = Ingestor::open(&s.0, 40, 4, 9, 32).unwrap();
        assert_eq!(recovered.edges(), edges.len() as u64);
        assert_eq!(recovered.snapshot(), live);
        assert_eq!(recovered.stats(50), live_stats);
    }

    #[test]
    fn rejected_edges_are_not_journaled() {
        let s = Scratch::new("reject");
        let mut ing = Ingestor::open(&s.0, 10, 4, 1, 32).unwrap();
        ing.ingest(0, 1, 1.0).unwrap();
        match ing.ingest(0, 99, 1.0) {
            Err(IngestError::Core(CoreError::NodeOutOfRange { .. })) => {}
            other => panic!("expected NodeOutOfRange, got {other:?}"),
        }
        match ing.ingest(1, 2, f64::NAN) {
            Err(IngestError::Core(CoreError::InvalidWeight { .. })) => {}
            other => panic!("expected InvalidWeight, got {other:?}"),
        }
        ing.flush().unwrap();
        drop(ing);
        let recovered = Ingestor::open(&s.0, 10, 4, 1, 32).unwrap();
        assert_eq!(recovered.edges(), 1);
    }

    #[test]
    fn stream_counters_track_the_stream_not_the_graph() {
        let s = Scratch::new("counters");
        let mut ing = Ingestor::open(&s.0, 100, 16, 3, 1024).unwrap();
        // 30 edges over nodes 0..10, then 10 edges over nodes 90..100.
        for i in 0..30u32 {
            ing.ingest(i % 10, (i + 1) % 10, 1.0).unwrap();
        }
        for i in 0..10u32 {
            ing.ingest(90 + (i % 5), 95 + (i % 5), 1.0).unwrap();
        }
        let stats = ing.stats(10);
        assert_eq!(stats.edges, 40);
        // ~20 distinct endpoints ever; only the 90.. band recently.
        assert!(stats.distinct_endpoints > 10.0);
        assert!(stats.recent_endpoints <= stats.distinct_endpoints);
        assert!(stats.recent_endpoints > 0.0);
    }
}
