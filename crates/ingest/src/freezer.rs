//! The generational freezer: live sketches → numbered frozen stores.
//!
//! A [`Freezer`] snapshots an [`Ingestor`]'s live sketches into numbered
//! generation directories (`gen-0001/`, `gen-0002/`, …) under one root.
//! Each generation is an ordinary sharded frozen store —
//! [`adsketch_core::freeze_sharded_format`] output, loadable by every
//! existing loader — plus nothing else: generations are immutable once
//! published and independently verifiable via their manifests. A
//! `CURRENT` file at the root names the latest published generation and
//! is flipped by write-to-temp + atomic rename, so readers either see
//! the previous generation or the complete new one, never a torn
//! pointer.
//!
//! The ingestor is locked only long enough to **clone** the live
//! sketches (and read the stream counters); the expensive part —
//! sharding, encoding, writing, checksumming — runs outside the lock,
//! so ingest continues while a freeze is in flight. [`spawn_freezer`]
//! wraps this in a background thread with a publish callback, which is
//! how a serving process chains a hot-swap
//! (`adsketch_serve::GenerationStore::swap`) onto each new generation.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use adsketch_core::{freeze_sharded_format, ShardManifest, StoreFormat};

use crate::pipeline::{IngestStats, Ingestor};
use crate::IngestError;

/// The root-level pointer file naming the latest published generation.
pub const CURRENT_FILE: &str = "CURRENT";

/// Directory name of generation `generation` under the freezer root.
pub fn generation_dir_name(generation: u64) -> String {
    format!("gen-{generation:04}")
}

/// Reads the root's `CURRENT` pointer: the latest published generation
/// number and its store directory, or `None` when nothing has been
/// published yet.
pub fn current_generation(root: impl AsRef<Path>) -> Result<Option<(u64, PathBuf)>, IngestError> {
    let root = root.as_ref();
    let raw = match std::fs::read_to_string(root.join(CURRENT_FILE)) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let name = raw.trim();
    let generation = name
        .strip_prefix("gen-")
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| IngestError::TornLog {
            path: root.join(CURRENT_FILE),
            detail: format!("unparseable CURRENT pointer {name:?}"),
        })?;
    Ok(Some((generation, root.join(name))))
}

/// One published generation: where it lives and what went into it.
#[derive(Debug, Clone)]
pub struct FrozenGeneration {
    /// The generation number (1-based, strictly increasing).
    pub generation: u64,
    /// The sharded store directory holding this generation.
    pub dir: PathBuf,
    /// The store's shard manifest (digests pin the exact bytes).
    pub manifest: ShardManifest,
    /// Edges the snapshot covers (the log prefix it equals).
    pub edges: u64,
    /// Stream counters at snapshot time.
    pub stats: IngestStats,
    /// Wall-clock spent freezing (snapshot clone + encode + write).
    pub freeze_seconds: f64,
}

/// Snapshots an ingestor into numbered generation directories.
#[derive(Debug)]
pub struct Freezer {
    root: PathBuf,
    shards: usize,
    format: StoreFormat,
    /// Edge-stream window the per-generation recency stats cover.
    stats_window: u64,
    next_gen: u64,
    frozen_edges: u64,
}

impl Freezer {
    /// Creates a freezer publishing into `root` (created if missing),
    /// `shards` shards per generation in `format`. Resumes numbering
    /// after an existing `CURRENT` pointer, so a restarted process never
    /// reuses a published generation number.
    pub fn new(
        root: impl AsRef<Path>,
        shards: usize,
        format: StoreFormat,
    ) -> Result<Self, IngestError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        let next_gen = match current_generation(&root)? {
            Some((generation, _)) => generation + 1,
            None => 1,
        };
        Ok(Freezer {
            root,
            shards,
            format,
            stats_window: 10_000,
            next_gen,
            frozen_edges: 0,
        })
    }

    /// Sets the recency window (in edges) the per-generation stream
    /// stats cover.
    pub fn stats_window(mut self, window: u64) -> Self {
        self.stats_window = window;
        self
    }

    /// The generation number the next freeze will publish.
    pub fn next_generation(&self) -> u64 {
        self.next_gen
    }

    /// Snapshots `ingestor` (brief lock), freezes the snapshot into the
    /// next generation directory (no lock held), and atomically flips
    /// `CURRENT` to it.
    pub fn freeze(&mut self, ingestor: &Mutex<Ingestor>) -> Result<FrozenGeneration, IngestError> {
        let started = Instant::now();
        let (snapshot, stats) = {
            let mut ing = ingestor.lock().expect("ingestor lock");
            ing.flush()?; // the journal covers everything the snapshot holds
            (ing.snapshot(), ing.stats(self.stats_window))
        };
        let generation = self.next_gen;
        let dir = self.root.join(generation_dir_name(generation));
        // A crash may have left a partial directory under this number
        // (CURRENT was never flipped to it): clear and rewrite.
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        let manifest = freeze_sharded_format(&snapshot, self.shards, &dir, self.format)?;
        let tmp = self.root.join(format!(".CURRENT.tmp.{generation}"));
        std::fs::write(&tmp, format!("{}\n", generation_dir_name(generation)))?;
        std::fs::rename(&tmp, self.root.join(CURRENT_FILE))?;
        self.next_gen += 1;
        self.frozen_edges = stats.edges;
        Ok(FrozenGeneration {
            generation,
            dir,
            manifest,
            edges: stats.edges,
            stats,
            freeze_seconds: started.elapsed().as_secs_f64(),
        })
    }

    /// [`Freezer::freeze`], but only if edges arrived since the last
    /// published generation (or nothing was ever published). Returns
    /// `None` when the stream is quiescent.
    pub fn freeze_if_dirty(
        &mut self,
        ingestor: &Mutex<Ingestor>,
    ) -> Result<Option<FrozenGeneration>, IngestError> {
        let edges = ingestor.lock().expect("ingestor lock").edges();
        if self.next_gen > 1 && edges == self.frozen_edges {
            return Ok(None);
        }
        self.freeze(ingestor).map(Some)
    }
}

/// A running background freezer; [`FreezerHandle::stop`] joins it.
#[derive(Debug)]
pub struct FreezerHandle {
    stop: Arc<AtomicBool>,
    join: std::thread::JoinHandle<Result<u64, IngestError>>,
}

impl FreezerHandle {
    /// Signals the freeze loop to exit, performs one final freeze if
    /// edges arrived since the last generation, and returns how many
    /// generations the loop published in total.
    pub fn stop(self) -> Result<u64, IngestError> {
        self.stop.store(true, Ordering::SeqCst);
        self.join.join().expect("freezer thread")
    }
}

/// Spawns the background freeze loop: every `interval`, publish a new
/// generation if the stream moved, and hand it to `on_freeze` (the
/// serving process's hot-swap hook). The loop exits promptly on
/// [`FreezerHandle::stop`], after one final catch-up freeze.
pub fn spawn_freezer<F>(
    mut freezer: Freezer,
    ingestor: Arc<Mutex<Ingestor>>,
    interval: Duration,
    mut on_freeze: F,
) -> FreezerHandle
where
    F: FnMut(&FrozenGeneration) + Send + 'static,
{
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let join = std::thread::spawn(move || {
        let mut published = 0u64;
        let tick = Duration::from_millis(2).min(interval);
        let mut since_freeze = Duration::ZERO;
        while !stop_flag.load(Ordering::SeqCst) {
            std::thread::sleep(tick);
            since_freeze += tick;
            if since_freeze < interval {
                continue;
            }
            since_freeze = Duration::ZERO;
            if let Some(generation) = freezer.freeze_if_dirty(&ingestor)? {
                on_freeze(&generation);
                published += 1;
            }
        }
        // Catch-up freeze so the final generation covers the whole log.
        if let Some(generation) = freezer.freeze_if_dirty(&ingestor)? {
            on_freeze(&generation);
            published += 1;
        }
        Ok(published)
    });
    FreezerHandle { stop, join }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_core::frozen::{shard_file_name, SHARD_MANIFEST_FILE};
    use adsketch_core::{AdsSet, FrozenAdsSet, QueryEngine, ShardManifest};
    use adsketch_graph::Graph;

    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("adsketch_ingest_frz_{tag}_{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    /// Loads a generation directory shard by shard and answers harmonic
    /// centrality for all nodes — the oracle comparison the serve tier
    /// makes over the wire, minus the wire. Shards keep global node ids.
    fn harmonic_of_generation(dir: &Path, n: usize) -> Vec<f64> {
        let manifest = ShardManifest::load(dir.join(SHARD_MANIFEST_FILE)).unwrap();
        let mut out = vec![0.0; n];
        for (i, rec) in manifest.records().iter().enumerate() {
            let shard = FrozenAdsSet::load(dir.join(shard_file_name(i))).unwrap();
            let engine = QueryEngine::new(&shard);
            let nodes: Vec<u32> = (rec.start as u32..rec.end as u32).collect();
            for (v, x) in nodes.iter().zip(engine.harmonic_batch(&nodes)) {
                out[*v as usize] = x;
            }
        }
        out
    }

    #[test]
    fn generations_advance_and_current_points_at_latest() {
        let s = Scratch::new("advance");
        let ingestor = Mutex::new(Ingestor::open(s.0.join("log"), 30, 4, 5, 64).unwrap());
        let mut freezer = Freezer::new(s.0.join("store"), 2, StoreFormat::V1).unwrap();
        for i in 0..20u32 {
            ingestor
                .lock()
                .unwrap()
                .ingest(i % 30, (i + 1) % 30, 1.0)
                .unwrap();
        }
        let g1 = freezer.freeze(&ingestor).unwrap();
        assert_eq!(g1.generation, 1);
        assert_eq!(g1.edges, 20);
        for i in 0..10u32 {
            ingestor
                .lock()
                .unwrap()
                .ingest((i + 5) % 30, (i + 9) % 30, 2.0)
                .unwrap();
        }
        let g2 = freezer.freeze_if_dirty(&ingestor).unwrap().expect("dirty");
        assert_eq!(g2.generation, 2);
        assert_eq!(g2.edges, 30);
        // Quiescent: no third generation.
        assert!(freezer.freeze_if_dirty(&ingestor).unwrap().is_none());
        let (current, dir) = current_generation(s.0.join("store")).unwrap().unwrap();
        assert_eq!(current, 2);
        assert_eq!(dir, g2.dir);
        // Both generations remain loadable; the latest matches the live
        // snapshot bitwise.
        let live = ingestor.lock().unwrap().snapshot();
        let oracle = QueryEngine::new(&live.freeze()).harmonic_all();
        assert_eq!(harmonic_of_generation(&g2.dir, 30), oracle);
        assert_eq!(
            harmonic_of_generation(&g1.dir, 30).len(),
            30 // gen 1 predates the last 10 edges but still serves
        );
    }

    #[test]
    fn freezer_numbering_resumes_after_restart() {
        let s = Scratch::new("resume");
        let ingestor = Mutex::new(Ingestor::open(s.0.join("log"), 10, 4, 5, 64).unwrap());
        let mut freezer = Freezer::new(s.0.join("store"), 1, StoreFormat::V2).unwrap();
        ingestor.lock().unwrap().ingest(0, 1, 1.0).unwrap();
        assert_eq!(freezer.freeze(&ingestor).unwrap().generation, 1);
        drop(freezer);
        let mut freezer = Freezer::new(s.0.join("store"), 1, StoreFormat::V2).unwrap();
        assert_eq!(freezer.next_generation(), 2);
        ingestor.lock().unwrap().ingest(1, 2, 1.0).unwrap();
        assert_eq!(freezer.freeze(&ingestor).unwrap().generation, 2);
    }

    #[test]
    fn crash_recovery_replays_the_log_into_the_next_generation() {
        let s = Scratch::new("crash");
        let edges: Vec<(u32, u32, f64)> = (0..25u32)
            .map(|i| (i % 20, (i * 3 + 1) % 20, 1.5))
            .collect();
        {
            let ingestor = Mutex::new(Ingestor::open(s.0.join("log"), 20, 4, 7, 8).unwrap());
            let mut freezer = Freezer::new(s.0.join("store"), 2, StoreFormat::V1).unwrap();
            for &(u, v, w) in &edges[..10] {
                ingestor.lock().unwrap().ingest(u, v, w).unwrap();
            }
            freezer.freeze(&ingestor).unwrap();
            for &(u, v, w) in &edges[10..] {
                ingestor.lock().unwrap().ingest(u, v, w).unwrap();
            }
            ingestor.lock().unwrap().flush().unwrap();
            // "Crash": drop everything without freezing the tail.
        }
        // Restart: replay the journal, freeze, and the new generation
        // equals the batch build of the *entire* edge stream.
        let ingestor = Mutex::new(Ingestor::open(s.0.join("log"), 20, 4, 7, 8).unwrap());
        assert_eq!(ingestor.lock().unwrap().edges(), 25);
        let mut freezer = Freezer::new(s.0.join("store"), 2, StoreFormat::V1).unwrap();
        let g2 = freezer.freeze(&ingestor).unwrap();
        assert_eq!(g2.generation, 2);
        let oracle = AdsSet::build(&Graph::directed_weighted(20, &edges).unwrap(), 4, 7);
        let expect = QueryEngine::new(&oracle.freeze()).harmonic_all();
        assert_eq!(harmonic_of_generation(&g2.dir, 20), expect);
    }

    #[test]
    fn background_freezer_publishes_while_ingest_continues() {
        let s = Scratch::new("bg");
        let ingestor = Arc::new(Mutex::new(
            Ingestor::open(s.0.join("log"), 40, 4, 3, 256).unwrap(),
        ));
        let freezer = Freezer::new(s.0.join("store"), 2, StoreFormat::V1).unwrap();
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let seen_sink = Arc::clone(&seen);
        let handle = spawn_freezer(
            freezer,
            Arc::clone(&ingestor),
            Duration::from_millis(10),
            move |g| seen_sink.lock().unwrap().push(g.generation),
        );
        for i in 0..400u32 {
            ingestor
                .lock()
                .unwrap()
                .ingest(i % 40, (i + 1) % 40, 1.0)
                .unwrap();
            if i % 50 == 0 {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        let published = handle.stop().unwrap();
        assert!(published >= 1, "at least the catch-up freeze publishes");
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len() as u64, published);
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "monotone: {seen:?}");
        // The final generation covers the whole stream.
        let (current, dir) = current_generation(s.0.join("store")).unwrap().unwrap();
        assert_eq!(current, *seen.last().unwrap());
        let live = ingestor.lock().unwrap().snapshot();
        let oracle = QueryEngine::new(&live.freeze()).harmonic_all();
        assert_eq!(harmonic_of_generation(&dir, 40), oracle);
    }
}
