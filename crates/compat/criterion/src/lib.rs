//! Offline stand-in for the [criterion](https://docs.rs/criterion) benchmark
//! harness.
//!
//! The adsketch build environment has no crates.io access, so this crate
//! implements the small slice of criterion's API that the workspace benches
//! use — [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock measurement loop. Numbers it reports are indicative, not
//! statistically rigorous; swap in the real crate when networked (the
//! bench sources need no changes).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimizer from deleting
/// the benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group; reported as elements (or
/// bytes) per second alongside the per-iteration time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier of the form `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id labelled `{function_name}/{parameter}`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a printable benchmark id; lets `bench_function` accept
/// both string names and [`BenchmarkId`]s, like real criterion.
pub trait IntoBenchmarkId {
    /// The printable id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`: a short warm-up, then enough iterations to fill a
    /// small measurement window, recording total time and iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run a few iterations and estimate the per-iter cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters < 3 || warmup_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        // Measurement: target ~100ms of work, capped to keep suites fast.
        let target = (0.1 / per_iter.max(1e-9)).clamp(1.0, 100_000.0) as u64;
        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = target;
    }
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let time = if per_iter < 1e-6 {
        format!("{:.2} ns", per_iter * 1e9)
    } else if per_iter < 1e-3 {
        format!("{:.2} µs", per_iter * 1e6)
    } else {
        format!("{:.3} ms", per_iter * 1e3)
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / per_iter;
            println!("{id:<50} time: {time:>12}   thrpt: {rate:.3e} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / per_iter;
            println!("{id:<50} time: {time:>12}   thrpt: {rate:.3e} B/s");
        }
        None => println!("{id:<50} time: {time:>12}"),
    }
}

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Configures from CLI arguments. A no-op in the offline shim, kept so
    /// `criterion_group!`'s expansion matches the real crate.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Times a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(id, &b, None);
        self
    }
}

/// A named group of benchmarks sharing configuration (mirrors
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count. Accepted for API compatibility; the shim's
    /// measurement window is time-based, so this is a no-op.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement window. A no-op in the shim.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id.into_id());
        report(&full, &b, self.throughput);
        self
    }

    /// Times one benchmark parameterised by `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        let full = format!("{}/{}", self.name, id.into_id());
        report(&full, &b, self.throughput);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to a `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| b.iter(|| (0..4u64).map(black_box).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        group.finish();
    }
}
