//! Deterministic case generation for the proptest shim.

/// SplitMix64-based RNG seeding each generated test case.
///
/// Each `(test name, case index)` pair gets an independent, reproducible
/// stream, so failures are stable across runs and machines.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the named test.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e3779b97f4a7c15),
        }
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("t", 4);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn unit_in_range() {
        let mut r = TestRng::for_case("unit", 0);
        for _ in 0..1000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
