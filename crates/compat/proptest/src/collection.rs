//! Collection strategies: `vec` and `hash_set`, mirroring
//! `proptest::collection`.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Half-open length range for collection strategies, mirroring
/// `proptest::collection::SizeRange`. Accepting `impl Into<SizeRange>`
/// lets untyped literals like `0..80` infer to `usize`, as with the real
/// crate.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty collection size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

/// Strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `HashSet`s with up to `size` elements drawn from
/// `element` (duplicates collapse, as in real proptest).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// See [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let s = vec(0u64..100, 2..6);
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn hash_set_stays_within_budget() {
        let s = hash_set(0u64..10, 0..20);
        let mut rng = TestRng::for_case("set", 0);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v.len() <= 10, "at most the domain size");
        }
    }
}
