//! The [`Strategy`] trait and the primitive strategies the workspace tests
//! use: integer/float ranges, tuples, [`Just`], and the `prop_map` /
//! `prop_flat_map` combinators.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A generator of values of type `Value` — the shim's counterpart of
/// `proptest::strategy::Strategy` (sampling only; no shrink trees).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Derives a dependent strategy from each generated value (e.g. first
    /// draw a size `n`, then draw edges over `0..n`).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}", self.start, self.end
                    );
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+)),+ $(,)?) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, G)
);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy", 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3usize..17).sample(&mut r);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.5).sample(&mut r);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut r = rng();
        let s = (1usize..5).prop_flat_map(|n| (Just(n), 0usize..n));
        for _ in 0..200 {
            let (n, x) = s.sample(&mut r);
            assert!(x < n);
        }
        let doubled = (0u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(doubled.sample(&mut r) % 2, 0);
        }
    }
}
