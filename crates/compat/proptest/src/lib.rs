//! Offline stand-in for the [proptest](https://docs.rs/proptest)
//! property-testing framework.
//!
//! The adsketch build environment has no crates.io access, so this crate
//! implements the slice of proptest's API the workspace tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`Just`](strategy::Just),
//! `prop::collection::{vec, hash_set}`, and the
//! [`proptest!`]/`prop_assert*` macros. Test cases are generated from a
//! deterministic per-test RNG (derived from the test name and the case
//! index, overridable in count via `PROPTEST_CASES`); there is **no
//! shrinking** — a failure reports the assertion from the raw sampled
//! case. Swap in the real crate when networked (test sources need no
//! changes).

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the `prop` module the real prelude exposes
    /// (`prop::collection::vec` et al.).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs one property-test function: samples `cases` inputs and executes the
/// body on each. Used by the [`proptest!`] expansion; not public API of the
/// real crate.
pub fn run_cases(test_name: &str, mut body: impl FnMut(&mut test_runner::TestRng)) {
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(48);
    for case in 0..cases {
        let mut rng = test_runner::TestRng::for_case(test_name, case);
        body(&mut rng);
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples every strategy per case and runs the
/// body. Mirrors `proptest::proptest!` for the subset of its grammar the
/// workspace uses.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::run_cases(stringify!($name), |rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), rng);)+
                    $body
                });
            }
        )*
    };
}

/// Asserts a property holds; panics with the failing expression (the real
/// crate records a failure and shrinks — the shim just asserts).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two values differ; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
