//! k-mins MinHash sketch: the minimum rank in each of k independent
//! permutations (paper, Section 2; Cohen 1997, Flajolet–Martin style).

use adsketch_util::hashing::RankHasher;

use crate::estimators::kmins_cardinality;

/// A k-mins sketch of a set of `u64` elements.
///
/// # Examples
///
/// ```
/// use adsketch_minhash::KMinsSketch;
/// use adsketch_util::RankHasher;
///
/// let h = RankHasher::new(7);
/// let mut s = KMinsSketch::new(16);
/// for e in 0..1000u64 {
///     s.insert(&h, e);
/// }
/// let est = s.estimate();
/// assert!((est - 1000.0).abs() / 1000.0 < 0.8, "est = {est}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KMinsSketch {
    mins: Vec<f64>,
}

impl KMinsSketch {
    /// An empty sketch with `k` permutations (`k ≥ 2` so the estimator is
    /// defined).
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "k-mins sketch needs k ≥ 2, got {k}");
        Self { mins: vec![1.0; k] }
    }

    /// Wraps pre-computed per-permutation minima (ADS extraction path).
    pub fn from_mins(mins: Vec<f64>) -> Self {
        assert!(mins.len() >= 2, "k-mins sketch needs k ≥ 2");
        assert!(
            mins.iter().all(|m| (0.0..=1.0).contains(m)),
            "minima must lie in [0,1]"
        );
        Self { mins }
    }

    /// The number of permutations k.
    #[inline]
    pub fn k(&self) -> usize {
        self.mins.len()
    }

    /// The per-permutation minimum ranks (1.0 for still-empty permutations).
    #[inline]
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Inserts an element; duplicate insertions are no-ops by construction
    /// (the same element always hashes to the same ranks).
    ///
    /// Returns `true` if any permutation minimum decreased.
    pub fn insert(&mut self, hasher: &RankHasher, element: u64) -> bool {
        let mut updated = false;
        for (i, m) in self.mins.iter_mut().enumerate() {
            let r = hasher.perm_rank(element, i as u32);
            if r < *m {
                *m = r;
                updated = true;
            }
        }
        updated
    }

    /// Inserts a pre-hashed rank vector (one rank per permutation); used by
    /// ADS code that stores ranks explicitly.
    pub fn insert_ranks(&mut self, ranks: &[f64]) -> bool {
        assert_eq!(ranks.len(), self.k(), "rank vector length must equal k");
        let mut updated = false;
        for (m, &r) in self.mins.iter_mut().zip(ranks) {
            if r < *m {
                *m = r;
                updated = true;
            }
        }
        updated
    }

    /// Merges another sketch of a (possibly overlapping) set built with the
    /// same hasher: element-wise minimum. The result is exactly the sketch
    /// of the union.
    pub fn merge(&mut self, other: &KMinsSketch) {
        assert_eq!(self.k(), other.k(), "cannot merge sketches of different k");
        for (m, &o) in self.mins.iter_mut().zip(&other.mins) {
            if o < *m {
                *m = o;
            }
        }
    }

    /// The basic cardinality estimate (unbiased; CV = `1/sqrt(k−2)`).
    pub fn estimate(&self) -> f64 {
        kmins_cardinality(&self.mins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "k ≥ 2")]
    fn k_must_be_at_least_two() {
        let _ = KMinsSketch::new(1);
    }

    #[test]
    fn empty_estimates_zero() {
        let s = KMinsSketch::new(4);
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn duplicates_are_noops() {
        let h = RankHasher::new(1);
        let mut s = KMinsSketch::new(8);
        s.insert(&h, 42);
        let snapshot = s.clone();
        assert!(!s.insert(&h, 42), "re-inserting must not update");
        assert_eq!(s, snapshot);
    }

    #[test]
    fn merge_equals_union() {
        let h = RankHasher::new(5);
        let mut a = KMinsSketch::new(8);
        let mut b = KMinsSketch::new(8);
        let mut ab = KMinsSketch::new(8);
        for e in 0..100 {
            a.insert(&h, e);
            ab.insert(&h, e);
        }
        for e in 50..200 {
            b.insert(&h, e);
            ab.insert(&h, e);
        }
        a.merge(&b);
        assert_eq!(a, ab);
    }

    #[test]
    fn insert_ranks_matches_insert() {
        let h = RankHasher::new(9);
        let mut a = KMinsSketch::new(4);
        let mut b = KMinsSketch::new(4);
        for e in 0..50u64 {
            a.insert(&h, e);
            let ranks: Vec<f64> = (0..4).map(|i| h.perm_rank(e, i)).collect();
            b.insert_ranks(&ranks);
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "different k")]
    fn merge_rejects_mismatched_k() {
        let mut a = KMinsSketch::new(4);
        let b = KMinsSketch::new(8);
        a.merge(&b);
    }

    #[test]
    fn estimate_tracks_cardinality_growth() {
        let h = RankHasher::new(3);
        let mut s = KMinsSketch::new(64);
        let mut last = 0.0;
        for e in 0..10_000u64 {
            s.insert(&h, e);
            if e == 99 || e == 999 || e == 9999 {
                let est = s.estimate();
                assert!(est > last, "estimate should grow: {est} after {last}");
                let truth = (e + 1) as f64;
                assert!((est - truth).abs() / truth < 0.5, "est {est} truth {truth}");
                last = est;
            }
        }
    }
}
