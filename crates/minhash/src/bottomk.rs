//! Bottom-k MinHash sketch: the k smallest ranks in one permutation
//! (paper, Section 2; also known as KMV, coordinated order samples, CRC).

use adsketch_util::hashing::RankHasher;
use adsketch_util::topk::RankedItem;

use crate::estimators::bottomk_cardinality;

/// A bottom-k sketch of a set of `u64` elements: the k elements of smallest
/// rank, kept with their ranks (a bona-fide uniform sample without
/// replacement, so element identities are available for similarity and
/// subset queries).
///
/// # Examples
///
/// ```
/// use adsketch_minhash::BottomKSketch;
/// use adsketch_util::RankHasher;
///
/// let h = RankHasher::new(1);
/// let mut s = BottomKSketch::new(32);
/// for e in 0..5000u64 {
///     s.insert(&h, e);
/// }
/// let est = s.estimate();
/// assert!((est - 5000.0).abs() / 5000.0 < 0.5, "est = {est}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BottomKSketch {
    k: usize,
    /// Retained items in ascending `(rank, id)` order; length ≤ k.
    entries: Vec<RankedItem>,
}

impl BottomKSketch {
    /// An empty bottom-k sketch (`k ≥ 1`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "bottom-k sketch needs k ≥ 1");
        Self {
            k,
            entries: Vec::with_capacity(k),
        }
    }

    /// The sample-size parameter k.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of retained elements (≤ k; < k only when the set itself is
    /// smaller than k).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was inserted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The retained `(rank, id)` items in ascending rank order.
    #[inline]
    pub fn items(&self) -> &[RankedItem] {
        &self.entries
    }

    /// The inclusion threshold `τ_k` (k-th smallest rank), or `None` while
    /// the sketch holds fewer than k elements.
    #[inline]
    pub fn threshold(&self) -> Option<f64> {
        (self.entries.len() == self.k).then(|| self.entries[self.k - 1].rank)
    }

    /// Whether `element` is one of the retained samples.
    pub fn contains(&self, hasher: &RankHasher, element: u64) -> bool {
        let item = RankedItem {
            rank: hasher.rank(element),
            id: element,
        };
        self.entries.binary_search_by(|e| e.cmp(&item)).is_ok()
    }

    /// Inserts an element; duplicates are detected by id and ignored.
    /// Returns `true` if the sketch changed.
    pub fn insert(&mut self, hasher: &RankHasher, element: u64) -> bool {
        self.insert_ranked(hasher.rank(element), element)
    }

    /// Inserts a pre-computed `(rank, id)` pair (ADS code path).
    pub fn insert_ranked(&mut self, rank: f64, id: u64) -> bool {
        let item = RankedItem { rank, id };
        match self.entries.binary_search_by(|e| e.cmp(&item)) {
            Ok(_) => false, // already present
            Err(pos) => {
                if pos >= self.k {
                    return false; // rank too large to enter
                }
                self.entries.insert(pos, item);
                self.entries.truncate(self.k);
                true
            }
        }
    }

    /// Merges another sketch built with the same hasher; the result equals
    /// the sketch of the union of the two sets.
    pub fn merge(&mut self, other: &BottomKSketch) {
        assert_eq!(self.k, other.k, "cannot merge sketches of different k");
        for item in &other.entries {
            self.insert_ranked(item.rank, item.id);
        }
    }

    /// The basic cardinality estimate: exact below k, `(k−1)/τ_k` at
    /// capacity (unbiased, CV ≤ `1/sqrt(k−2)`).
    pub fn estimate(&self) -> f64 {
        bottomk_cardinality(self.k, self.entries.len(), self.threshold())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_util::stats::ErrorStats;

    #[test]
    fn exact_below_k() {
        let h = RankHasher::new(2);
        let mut s = BottomKSketch::new(10);
        for e in 0..7 {
            s.insert(&h, e);
        }
        assert_eq!(s.estimate(), 7.0);
        assert!(s.threshold().is_none());
    }

    #[test]
    fn keeps_k_smallest_and_sorted() {
        let h = RankHasher::new(4);
        let mut s = BottomKSketch::new(5);
        for e in 0..1000u64 {
            s.insert(&h, e);
        }
        assert_eq!(s.len(), 5);
        let mut expected: Vec<(f64, u64)> = (0..1000u64).map(|e| (h.rank(e), e)).collect();
        expected.sort_by(|a, b| a.0.total_cmp(&b.0));
        let got: Vec<(f64, u64)> = s.items().iter().map(|i| (i.rank, i.id)).collect();
        assert_eq!(got, expected[..5].to_vec());
        for w in s.items().windows(2) {
            assert!(w[0] < w[1], "entries must be strictly sorted");
        }
    }

    #[test]
    fn duplicates_ignored() {
        let h = RankHasher::new(6);
        let mut s = BottomKSketch::new(4);
        assert!(s.insert(&h, 1));
        assert!(!s.insert(&h, 1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.estimate(), 1.0);
    }

    #[test]
    fn contains_reports_membership() {
        let h = RankHasher::new(8);
        let mut s = BottomKSketch::new(3);
        for e in 0..100 {
            s.insert(&h, e);
        }
        let ids: Vec<u64> = s.items().iter().map(|i| i.id).collect();
        for id in ids {
            assert!(s.contains(&h, id));
        }
        // An element with rank above the threshold is not contained.
        let tau = s.threshold().unwrap();
        let outside = (0..100u64).find(|&e| h.rank(e) > tau).unwrap();
        assert!(!s.contains(&h, outside));
    }

    #[test]
    fn merge_equals_union_sketch() {
        let h = RankHasher::new(10);
        let mut a = BottomKSketch::new(8);
        let mut b = BottomKSketch::new(8);
        let mut ab = BottomKSketch::new(8);
        for e in 0..300 {
            a.insert(&h, e);
            ab.insert(&h, e);
        }
        for e in 200..600 {
            b.insert(&h, e);
            ab.insert(&h, e);
        }
        a.merge(&b);
        assert_eq!(a, ab);
    }

    #[test]
    fn merge_is_idempotent_and_commutative() {
        let h = RankHasher::new(12);
        let mut a = BottomKSketch::new(4);
        let mut b = BottomKSketch::new(4);
        for e in 0..50 {
            a.insert(&h, e);
        }
        for e in 25..80 {
            b.insert(&h, e);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut twice = ab.clone();
        twice.merge(&b);
        assert_eq!(twice, ab);
    }

    #[test]
    fn estimator_unbiased_at_capacity() {
        let n = 300u64;
        let k = 6;
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..4000u64 {
            let h = RankHasher::new(seed);
            let mut s = BottomKSketch::new(k);
            for e in 0..n {
                s.insert(&h, e);
            }
            err.push(s.estimate());
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "bias z-score {z}");
    }
}
