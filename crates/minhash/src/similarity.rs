//! Similarity estimation from coordinated bottom-k sketches.
//!
//! Because sketches share one rank assignment, the k smallest ranks of the
//! *union* of two sets are computable from the two sketches alone, and the
//! fraction of them present in both sets is an unbiased estimator of the
//! Jaccard coefficient (Cohen 1997; Broder 1997) — one of the ADS
//! applications the paper's introduction surveys.

use crate::bottomk::BottomKSketch;

/// Estimates the Jaccard coefficient `|A∩B| / |A∪B|` from two coordinated
/// bottom-k sketches.
///
/// Uses the k smallest ranks of the union; each is in the intersection iff
/// it appears in both sketches. Returns 0 for two empty sets.
pub fn jaccard(a: &BottomKSketch, b: &BottomKSketch) -> f64 {
    assert_eq!(a.k(), b.k(), "sketches must share k");
    let mut union = a.clone();
    union.merge(b);
    if union.is_empty() {
        return 0.0;
    }
    let in_both = union
        .items()
        .iter()
        .filter(|item| {
            let in_a = a.items().binary_search_by(|e| e.cmp(item)).is_ok();
            let in_b = b.items().binary_search_by(|e| e.cmp(item)).is_ok();
            in_a && in_b
        })
        .count();
    in_both as f64 / union.len() as f64
}

/// Estimates the union cardinality `|A∪B|` by merging the sketches and
/// applying the basic bottom-k estimator.
pub fn union_cardinality(a: &BottomKSketch, b: &BottomKSketch) -> f64 {
    let mut union = a.clone();
    union.merge(b);
    union.estimate()
}

/// Estimates the intersection cardinality as `Jaccard × |A∪B|`.
pub fn intersection_cardinality(a: &BottomKSketch, b: &BottomKSketch) -> f64 {
    jaccard(a, b) * union_cardinality(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_util::hashing::RankHasher;
    use adsketch_util::stats::RunningStat;

    fn sketch_of(h: &RankHasher, k: usize, range: std::ops::Range<u64>) -> BottomKSketch {
        let mut s = BottomKSketch::new(k);
        for e in range {
            s.insert(h, e);
        }
        s
    }

    #[test]
    fn identical_sets_have_jaccard_one() {
        let h = RankHasher::new(1);
        let a = sketch_of(&h, 16, 0..500);
        let b = sketch_of(&h, 16, 0..500);
        assert_eq!(jaccard(&a, &b), 1.0);
    }

    #[test]
    fn disjoint_sets_have_jaccard_zero() {
        let h = RankHasher::new(2);
        let a = sketch_of(&h, 16, 0..500);
        let b = sketch_of(&h, 16, 1000..1500);
        assert_eq!(jaccard(&a, &b), 0.0);
    }

    #[test]
    fn jaccard_estimate_close_to_truth() {
        // |A| = |B| = 600, overlap 400 ⇒ J = 400/800 = 0.5.
        let mut stat = RunningStat::new();
        for seed in 0..300 {
            let h = RankHasher::new(seed);
            let a = sketch_of(&h, 64, 0..600);
            let b = sketch_of(&h, 64, 200..800);
            stat.push(jaccard(&a, &b));
        }
        assert!((stat.mean() - 0.5).abs() < 0.03, "mean J = {}", stat.mean());
    }

    #[test]
    fn union_and_intersection_estimates() {
        let mut us = RunningStat::new();
        let mut is = RunningStat::new();
        for seed in 0..300 {
            let h = RankHasher::new(seed + 7000);
            let a = sketch_of(&h, 64, 0..600);
            let b = sketch_of(&h, 64, 200..800);
            us.push(union_cardinality(&a, &b));
            is.push(intersection_cardinality(&a, &b));
        }
        assert!(
            (us.mean() - 800.0).abs() / 800.0 < 0.05,
            "union {}",
            us.mean()
        );
        assert!(
            (is.mean() - 400.0).abs() / 400.0 < 0.10,
            "inter {}",
            is.mean()
        );
    }

    #[test]
    fn small_sets_are_exact() {
        let h = RankHasher::new(4);
        let a = sketch_of(&h, 32, 0..10);
        let b = sketch_of(&h, 32, 5..15);
        assert!((jaccard(&a, &b) - 5.0 / 15.0).abs() < 1e-12);
        assert_eq!(union_cardinality(&a, &b), 15.0);
    }

    #[test]
    fn empty_sets() {
        let a = BottomKSketch::new(8);
        let b = BottomKSketch::new(8);
        assert_eq!(jaccard(&a, &b), 0.0);
        assert_eq!(union_cardinality(&a, &b), 0.0);
    }
}
