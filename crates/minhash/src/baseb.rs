//! Base-b (rounded-rank) MinHash sketches (paper, Section 4.4).
//!
//! Storing full-precision ranks costs Θ(log n) bits each; rounding ranks
//! down to powers of `1/b` shrinks them to small integer *levels*
//! `h = ⌈−log_b r⌉` at the price of rank collisions and extra estimator
//! variance. Two structures are provided:
//!
//! * [`BaseBRegisters`] — k-partition layout with one saturating max-level
//!   register per bucket. Duplicate-insensitive (an element's level is
//!   deterministic), mergeable; with `b = 2` and 5-bit saturation this is
//!   exactly the HyperLogLog sketch (implemented on top of this type in
//!   `adsketch-stream`).
//! * [`BaseBBottomK`] — the k largest levels (= k smallest rounded ranks)
//!   as a multiset. Because levels collide, element identity is *not*
//!   recoverable, so this structure assumes a stream of distinct elements
//!   (the ADS/HIP setting, where distinctness is handled upstream).

use adsketch_util::ranks::BaseB;

/// k saturating max-level registers over a random partition.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseBRegisters {
    base: BaseB,
    max_level: u32,
    regs: Vec<u32>,
}

impl BaseBRegisters {
    /// `k` zero registers with the given base and saturation level.
    pub fn new(k: usize, base: BaseB, max_level: u32) -> Self {
        assert!(k >= 2, "need at least 2 registers");
        assert!(max_level >= 1);
        Self {
            base,
            max_level,
            regs: vec![0; k],
        }
    }

    /// Number of registers k.
    #[inline]
    pub fn k(&self) -> usize {
        self.regs.len()
    }

    /// The rounding base.
    #[inline]
    pub fn base(&self) -> &BaseB {
        &self.base
    }

    /// The saturation level.
    #[inline]
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Raw register values.
    #[inline]
    pub fn registers(&self) -> &[u32] {
        &self.regs
    }

    /// Observes an element with the given full-precision rank in `bucket`:
    /// the register keeps the max of the (saturated) level.
    /// Returns `true` if the register increased — exactly the events HIP
    /// counts.
    pub fn observe(&mut self, bucket: usize, rank: f64) -> bool {
        let level = self.base.level(rank).min(self.max_level);
        if level > self.regs[bucket] {
            self.regs[bucket] = level;
            true
        } else {
            false
        }
    }

    /// Whether a rank *would* update the register (no mutation).
    pub fn would_update(&self, bucket: usize, rank: f64) -> bool {
        self.base.level(rank).min(self.max_level) > self.regs[bucket]
    }

    /// Probability that a fresh random element updates the sketch:
    /// `(1/k) Σ_i P(level > regs[i])` with saturated registers contributing
    /// 0. `P(level > m) = P(r < b^{-m}) = b^{-m}`.
    pub fn update_probability(&self) -> f64 {
        let k = self.k() as f64;
        self.regs
            .iter()
            .map(|&m| {
                if m >= self.max_level {
                    0.0
                } else {
                    self.base.value(m)
                }
            })
            .sum::<f64>()
            / k
    }

    /// Register-wise max merge (= sketch of the union).
    pub fn merge(&mut self, other: &BaseBRegisters) {
        assert_eq!(self.k(), other.k(), "mismatched k");
        assert_eq!(self.base, other.base, "mismatched base");
        assert_eq!(self.max_level, other.max_level, "mismatched saturation");
        for (r, &o) in self.regs.iter_mut().zip(&other.regs) {
            *r = (*r).max(o);
        }
    }

    /// Number of saturated registers.
    pub fn saturated(&self) -> usize {
        self.regs.iter().filter(|&&r| r >= self.max_level).count()
    }
}

/// The k smallest *rounded* ranks of a distinct-element stream, kept as a
/// multiset of levels (larger level = smaller rank).
#[derive(Debug, Clone)]
pub struct BaseBBottomK {
    base: BaseB,
    k: usize,
    /// Min-heap over levels: the root is the k-th largest level, i.e. the
    /// inclusion threshold.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<u32>>,
}

impl BaseBBottomK {
    /// An empty sketch.
    pub fn new(k: usize, base: BaseB) -> Self {
        assert!(k >= 1);
        Self {
            base,
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The sample-size parameter k.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of retained levels (≤ k).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing was offered yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The threshold level (k-th largest), or `None` below capacity.
    #[inline]
    pub fn threshold_level(&self) -> Option<u32> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|r| r.0)
        } else {
            None
        }
    }

    /// The threshold as a rank value: `b^{-level}`, or 1.0 (the supremum)
    /// below capacity. This is exactly the HIP inclusion probability of the
    /// next distinct element that enters (see `adsketch-core`).
    pub fn threshold_value(&self) -> f64 {
        match self.threshold_level() {
            Some(l) => self.base.value(l),
            None => 1.0,
        }
    }

    /// Offers the next *distinct* element's full-precision rank; the element
    /// enters iff its rounded rank is strictly below the threshold.
    /// Returns `true` on entry.
    pub fn offer(&mut self, rank: f64) -> bool {
        let level = self.base.level(rank);
        match self.threshold_level() {
            None => {
                self.heap.push(std::cmp::Reverse(level));
                true
            }
            Some(t) => {
                // Strictly smaller rounded rank ⇔ strictly larger level.
                if level > t {
                    self.heap.pop();
                    self.heap.push(std::cmp::Reverse(level));
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_util::hashing::RankHasher;

    #[test]
    fn registers_keep_max_level() {
        let mut r = BaseBRegisters::new(4, BaseB::new(2.0), 31);
        assert!(r.observe(0, 0.3)); // level 2
        assert!(!r.observe(0, 0.4)); // level 2, no increase
        assert!(r.observe(0, 0.05)); // level 5
        assert_eq!(r.registers()[0], 5);
    }

    #[test]
    fn registers_saturate() {
        let mut r = BaseBRegisters::new(2, BaseB::new(2.0), 3);
        assert!(r.observe(0, 1e-9)); // would be level ~30, capped at 3
        assert_eq!(r.registers()[0], 3);
        assert_eq!(r.saturated(), 1);
        assert!(!r.observe(0, 1e-12), "saturated register never updates");
    }

    #[test]
    fn update_probability_decreases() {
        let h = RankHasher::new(11);
        let mut r = BaseBRegisters::new(16, BaseB::new(2.0), 31);
        let mut last = r.update_probability();
        assert_eq!(last, 1.0, "empty sketch always updates");
        for e in 0..2000u64 {
            r.observe(h.bucket(e, 16), h.rank(e));
            if e % 500 == 499 {
                let p = r.update_probability();
                assert!(p < last, "p should shrink: {p} vs {last}");
                last = p;
            }
        }
    }

    #[test]
    fn update_probability_excludes_saturated() {
        let mut r = BaseBRegisters::new(2, BaseB::new(2.0), 3);
        r.observe(0, 1e-9); // saturates register 0
        let p = r.update_probability();
        // Only register 1 (level 0 ⇒ P=1) contributes: p = 1/2.
        assert_eq!(p, 0.5);
    }

    #[test]
    fn would_update_is_a_dry_run_of_observe() {
        let h = RankHasher::new(17);
        let mut r = BaseBRegisters::new(8, BaseB::new(2.0), 31);
        for e in 0..500u64 {
            let b = h.bucket(e, 8);
            let rank = h.rank(e);
            let predicted = r.would_update(b, rank);
            let actual = r.observe(b, rank);
            assert_eq!(predicted, actual, "element {e}");
        }
    }

    #[test]
    fn registers_merge_is_union() {
        let h = RankHasher::new(13);
        let base = BaseB::new(2.0);
        let mut a = BaseBRegisters::new(8, base, 31);
        let mut b = BaseBRegisters::new(8, base, 31);
        let mut ab = BaseBRegisters::new(8, base, 31);
        for e in 0..100 {
            a.observe(h.bucket(e, 8), h.rank(e));
            ab.observe(h.bucket(e, 8), h.rank(e));
        }
        for e in 50..200 {
            b.observe(h.bucket(e, 8), h.rank(e));
            ab.observe(h.bucket(e, 8), h.rank(e));
        }
        a.merge(&b);
        assert_eq!(a, ab);
    }

    #[test]
    fn bottomk_threshold_progression() {
        let base = BaseB::new(2.0);
        let mut s = BaseBBottomK::new(2, base);
        assert_eq!(s.threshold_value(), 1.0);
        assert!(s.offer(0.6)); // level 1
        assert!(s.offer(0.3)); // level 2
        assert_eq!(s.threshold_level(), Some(1));
        assert_eq!(s.threshold_value(), 0.5);
        // Same level as threshold: rejected (strict comparison).
        assert!(!s.offer(0.7));
        // Strictly deeper level: accepted, evicting the threshold.
        assert!(s.offer(0.2)); // level 3
        assert_eq!(s.threshold_level(), Some(2));
    }

    #[test]
    fn bottomk_tracks_k_largest_levels() {
        use adsketch_util::rng::{Rng64, Xoshiro256pp};
        let base = BaseB::new(1.5);
        let mut rng = Xoshiro256pp::new(3);
        let mut s = BaseBBottomK::new(5, base);
        let mut levels: Vec<u32> = Vec::new();
        for _ in 0..500 {
            let r = rng.open_unit_f64();
            s.offer(r);
            levels.push(base.level(r));
        }
        levels.sort_unstable_by(|a, b| b.cmp(a));
        // The threshold must equal the 5th largest level... except that the
        // strict-entry rule can reject ties that a true multiset would
        // accept; the threshold is then still the 5th largest distinct-ish
        // value. Verify the weaker invariant: threshold ≤ 5th largest level
        // and ≥ 5th largest level of the accepted subsequence.
        let t = s.threshold_level().unwrap();
        assert!(t <= levels[4], "threshold {t} vs 5th largest {}", levels[4]);
    }
}
