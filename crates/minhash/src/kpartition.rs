//! k-partition MinHash sketch: elements hash into k buckets; the sketch
//! keeps the minimum rank per bucket (paper, Section 2; the layout
//! underlying HyperLogLog and one-permutation hashing).

use adsketch_util::hashing::RankHasher;

use crate::estimators::kpartition_cardinality;

/// A k-partition sketch of a set of `u64` elements.
///
/// # Examples
///
/// ```
/// use adsketch_minhash::KPartitionSketch;
/// use adsketch_util::RankHasher;
///
/// let h = RankHasher::new(3);
/// let mut s = KPartitionSketch::new(32);
/// for e in 0..4000u64 {
///     s.insert(&h, e);
/// }
/// let est = s.estimate();
/// assert!((est - 4000.0).abs() / 4000.0 < 0.5, "est = {est}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KPartitionSketch {
    mins: Vec<f64>,
}

impl KPartitionSketch {
    /// An empty sketch with `k ≥ 2` buckets.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "k-partition sketch needs k ≥ 2, got {k}");
        Self { mins: vec![1.0; k] }
    }

    /// Wraps pre-computed per-bucket minima (ADS extraction path).
    pub fn from_mins(mins: Vec<f64>) -> Self {
        assert!(mins.len() >= 2, "k-partition sketch needs k ≥ 2");
        assert!(
            mins.iter().all(|m| (0.0..=1.0).contains(m)),
            "minima must lie in [0,1]"
        );
        Self { mins }
    }

    /// The number of buckets k.
    #[inline]
    pub fn k(&self) -> usize {
        self.mins.len()
    }

    /// Per-bucket minimum ranks (1.0 = empty bucket).
    #[inline]
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Number of nonempty buckets `k′`.
    #[inline]
    pub fn nonempty(&self) -> usize {
        self.mins.iter().filter(|&&x| x < 1.0).count()
    }

    /// Inserts an element (duplicates are no-ops); returns `true` if the
    /// bucket minimum decreased.
    pub fn insert(&mut self, hasher: &RankHasher, element: u64) -> bool {
        let b = hasher.bucket(element, self.k());
        let r = hasher.rank(element);
        if r < self.mins[b] {
            self.mins[b] = r;
            true
        } else {
            false
        }
    }

    /// Inserts a pre-computed `(bucket, rank)` pair (ADS code path).
    pub fn insert_at(&mut self, bucket: usize, rank: f64) -> bool {
        assert!(bucket < self.k(), "bucket out of range");
        if rank < self.mins[bucket] {
            self.mins[bucket] = rank;
            true
        } else {
            false
        }
    }

    /// Merges another sketch built with the same hasher: element-wise
    /// minimum = sketch of the union.
    pub fn merge(&mut self, other: &KPartitionSketch) {
        assert_eq!(self.k(), other.k(), "cannot merge sketches of different k");
        for (m, &o) in self.mins.iter_mut().zip(&other.mins) {
            if o < *m {
                *m = o;
            }
        }
    }

    /// The basic cardinality estimate (Section 4.3): conditioned on the
    /// number of nonempty buckets. Biased low when fewer than 2 buckets are
    /// occupied.
    pub fn estimate(&self) -> f64 {
        kpartition_cardinality(&self.mins)
    }

    /// Linear-counting estimate `k·ln(k/empty)` from the empty-bucket count
    /// — the small-range regime estimator HyperLogLog switches to; exposed
    /// for comparison experiments.
    pub fn linear_counting(&self) -> f64 {
        let k = self.k() as f64;
        let empty = (self.k() - self.nonempty()) as f64;
        if empty == 0.0 {
            f64::INFINITY
        } else {
            k * (k / empty).ln()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch() {
        let s = KPartitionSketch::new(8);
        assert_eq!(s.nonempty(), 0);
        assert_eq!(s.estimate(), 0.0);
        assert_eq!(s.linear_counting(), 0.0 * 8.0); // ln(k/k) = 0
    }

    #[test]
    fn duplicates_are_noops() {
        let h = RankHasher::new(5);
        let mut s = KPartitionSketch::new(8);
        s.insert(&h, 9);
        let snap = s.clone();
        assert!(!s.insert(&h, 9));
        assert_eq!(s, snap);
    }

    #[test]
    fn merge_equals_union() {
        let h = RankHasher::new(6);
        let mut a = KPartitionSketch::new(16);
        let mut b = KPartitionSketch::new(16);
        let mut ab = KPartitionSketch::new(16);
        for e in 0..200 {
            a.insert(&h, e);
            ab.insert(&h, e);
        }
        for e in 100..400 {
            b.insert(&h, e);
            ab.insert(&h, e);
        }
        a.merge(&b);
        assert_eq!(a, ab);
    }

    #[test]
    fn linear_counting_tracks_small_sets() {
        let h = RankHasher::new(7);
        let mut s = KPartitionSketch::new(1024);
        for e in 0..100u64 {
            s.insert(&h, e);
        }
        let lc = s.linear_counting();
        assert!((lc - 100.0).abs() < 20.0, "linear counting {lc}");
    }

    #[test]
    fn saturated_linear_counting_is_infinite() {
        let mut s = KPartitionSketch::new(2);
        s.insert_at(0, 0.1);
        s.insert_at(1, 0.2);
        assert!(s.linear_counting().is_infinite());
    }

    #[test]
    fn insert_at_bounds_checked() {
        let mut s = KPartitionSketch::new(4);
        assert!(s.insert_at(3, 0.5));
        assert!(!s.insert_at(3, 0.9));
        let result = std::panic::catch_unwind(move || s.insert_at(4, 0.1));
        assert!(result.is_err());
    }
}
