//! MinHash sketches of plain sets and the paper's "basic" cardinality
//! estimators (Section 4).
//!
//! A MinHash sketch summarizes a subset `N` of a domain with respect to
//! random permutations given by ranks `r(v) ~ U[0,1)`. The three flavors
//! trade update cost, information content and maintenance cost
//! (paper, Section 2):
//!
//! * [`KMinsSketch`] — the smallest rank in each of `k` independent
//!   permutations (sampling *with* replacement);
//! * [`BottomKSketch`] — the `k` smallest ranks in one permutation
//!   (sampling *without* replacement; the most informative flavor);
//! * [`KPartitionSketch`] — elements are hashed into `k` buckets; the
//!   sketch keeps the smallest rank per bucket (one-permutation hashing;
//!   HyperLogLog's layout).
//!
//! Sketches built with the same [`adsketch_util::RankHasher`] are
//! *coordinated*: the same element gets the same rank everywhere, which
//! makes sketches mergeable and supports similarity estimation
//! ([`similarity`]).
//!
//! The basic estimators and their exact variance theory live in
//! [`estimators`]; base-b (rounded-rank) register sketches in [`baseb`].

#![forbid(unsafe_code)]

pub mod baseb;
pub mod bottomk;
pub mod estimators;
pub mod kmins;
pub mod kpartition;
pub mod similarity;

pub use bottomk::BottomKSketch;
pub use kmins::KMinsSketch;
pub use kpartition::KPartitionSketch;
