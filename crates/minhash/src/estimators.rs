//! Basic MinHash cardinality estimators (paper, Section 4).
//!
//! These are the estimators the paper proves optimal (UMVUE) for their
//! respective sketches via the Lehmann–Scheffé theorem — and which HIP then
//! beats by using the full ADS history instead of a single sketch:
//!
//! | sketch | estimator | CV |
//! |---|---|---|
//! | k-mins | `(k−1) / Σ_i −ln(1−x_i)` | `1/sqrt(k−2)` exactly |
//! | bottom-k | `(k−1) / τ_k` | `≤ 1/sqrt(k−2)` |
//! | k-partition | `k′(k′−1) / Σ_t −ln(1−x_t)` over the `k′` nonempty buckets | `≈ sqrt(k/k′)/sqrt(k−2)`, biased low for n ≲ 2k |

/// Cardinality estimate from a k-mins sketch: the vector of per-permutation
/// minimum ranks (`1.0` = empty permutation, i.e. the supremum).
///
/// The estimator is `(k−1)/Σ −ln(1−x_i)`: viewing `y = −ln(1−x)` as
/// exponential with rate `n`, the sum is a complete sufficient statistic and
/// the estimator is the unique UMVUE (paper, Lemmas 4.1–4.2). Unbiased for
/// `k > 1`; finite variance requires `k > 2`.
pub fn kmins_cardinality(mins: &[f64]) -> f64 {
    let k = mins.len();
    assert!(k > 1, "k-mins estimator requires k > 1");
    let sum: f64 = mins.iter().map(|&x| exp_transform(x)).sum();
    if sum == 0.0 {
        return 0.0;
    }
    (k as f64 - 1.0) / sum
}

/// Converts a uniform rank `x ∈ [0,1]` to its exponential equivalent
/// `y = −ln(1−x)` (rank 1.0 maps to +∞). This 1–1 monotone map preserves
/// minima, so either parametrization describes the same sketch.
#[inline]
pub fn exp_transform(x: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&x));
    if x >= 1.0 {
        f64::INFINITY
    } else {
        -(-x).ln_1p()
    }
}

/// Cardinality estimate from a bottom-k sketch over *uniform* ranks, given
/// the number of retained elements and (when the sketch is full) the k-th
/// smallest rank `τ_k`.
///
/// For `len < k` the sketch holds the whole set: the estimate is exact.
/// Otherwise `(k−1)/τ_k` is the conditional inverse-probability (KMV)
/// estimator — unbiased, with CV ≤ `1/sqrt(k−2)` (paper, Lemma 4.3) — and
/// `τ_k` is a complete sufficient statistic (Lemma 4.5).
pub fn bottomk_cardinality(k: usize, len: usize, tau_k: Option<f64>) -> f64 {
    assert!(k > 1, "bottom-k estimator requires k > 1");
    match tau_k {
        None => {
            debug_assert!(len < k);
            len as f64
        }
        Some(tau) => {
            debug_assert!(len == k);
            debug_assert!(tau > 0.0 && tau <= 1.0);
            (k as f64 - 1.0) / tau
        }
    }
}

/// Cardinality estimate from a k-partition sketch: `mins[t]` is the minimum
/// rank in bucket `t` (`1.0` = empty bucket).
///
/// Uses the paper's Section 4.3 estimator: with `k′` nonempty buckets,
/// approximate each bucket as an equal `n/k′` share and apply the k′-mins
/// estimator, scaled by `k′`. Biased low for small `n` (notably `k′ ≤ 1`
/// estimates 0) — exactly the behavior visible in the paper's Figure 2.
pub fn kpartition_cardinality(mins: &[f64]) -> f64 {
    let nonempty: Vec<f64> = mins.iter().copied().filter(|&x| x < 1.0).collect();
    let kp = nonempty.len();
    if kp <= 1 {
        // With one bucket there is no (k′−1) numerator; the paper notes this
        // as irreducible downward bias.
        return 0.0;
    }
    let sum: f64 = nonempty.iter().map(|&x| exp_transform(x)).sum();
    kp as f64 * (kp as f64 - 1.0) / sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsketch_util::hashing::RankHasher;
    use adsketch_util::stats::{cv_basic, ErrorStats};

    #[test]
    fn exp_transform_edges() {
        assert_eq!(exp_transform(0.0), 0.0);
        assert!(exp_transform(1.0).is_infinite());
        assert!((exp_transform(0.5) - 2f64.ln()).abs() < 1e-15);
    }

    #[test]
    fn empty_sketches_estimate_zero() {
        assert_eq!(kmins_cardinality(&[1.0, 1.0, 1.0]), 0.0);
        assert_eq!(kpartition_cardinality(&[1.0, 1.0]), 0.0);
        assert_eq!(bottomk_cardinality(4, 0, None), 0.0);
    }

    #[test]
    fn bottomk_exact_below_k() {
        assert_eq!(bottomk_cardinality(8, 3, None), 3.0);
    }

    #[test]
    fn bottomk_formula() {
        assert_eq!(bottomk_cardinality(5, 5, Some(0.1)), 40.0);
    }

    #[test]
    fn kpartition_single_bucket_is_zero() {
        assert_eq!(kpartition_cardinality(&[0.3, 1.0, 1.0]), 0.0);
    }

    /// Empirical unbiasedness + CV of the k-mins estimator over many seeds.
    #[test]
    fn kmins_unbiased_and_cv_matches_theory() {
        let k = 8;
        let n = 500u64;
        let runs = 4000;
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..runs {
            let h = RankHasher::new(seed);
            let mut mins = vec![1.0f64; k];
            for e in 0..n {
                for (i, m) in mins.iter_mut().enumerate() {
                    let r = h.perm_rank(e, i as u32);
                    if r < *m {
                        *m = r;
                    }
                }
            }
            err.push(kmins_cardinality(&mins));
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "bias z-score {z}");
        let cv = cv_basic(k);
        assert!(
            (err.nrmse() - cv).abs() / cv < 0.15,
            "NRMSE {} vs theory {cv}",
            err.nrmse()
        );
    }

    /// Empirical unbiasedness + CV bound for the bottom-k estimator.
    #[test]
    fn bottomk_unbiased_and_cv_below_bound() {
        use adsketch_util::topk::KSmallest;
        let k = 8;
        let n = 500u64;
        let runs = 4000;
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..runs {
            let h = RankHasher::new(seed + 100_000);
            let mut ks = KSmallest::new(k);
            for e in 0..n {
                ks.offer(h.rank(e), e);
            }
            err.push(bottomk_cardinality(
                k,
                ks.len(),
                ks.threshold().map(|t| t.rank),
            ));
        }
        let z = err.relative_bias() / err.bias_std_error();
        assert!(z.abs() < 4.0, "bias z-score {z}");
        assert!(
            err.nrmse() < cv_basic(k) * 1.1,
            "NRMSE {} above bound {}",
            err.nrmse(),
            cv_basic(k)
        );
    }

    /// k-partition behaves like the others for n >> k.
    #[test]
    fn kpartition_reasonable_for_large_n() {
        let k = 16;
        let n = 4000u64;
        let runs = 2000;
        let mut err = ErrorStats::new(n as f64);
        for seed in 0..runs {
            let h = RankHasher::new(seed + 200_000);
            let mut mins = vec![1.0f64; k];
            for e in 0..n {
                let b = h.bucket(e, k);
                let r = h.rank(e);
                if r < mins[b] {
                    mins[b] = r;
                }
            }
            err.push(kpartition_cardinality(&mins));
        }
        assert!(
            err.relative_bias().abs() < 0.03,
            "bias {}",
            err.relative_bias()
        );
        assert!(
            err.nrmse() < cv_basic(k) * 1.3,
            "NRMSE {} vs {}",
            err.nrmse(),
            cv_basic(k)
        );
    }
}
