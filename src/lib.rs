//! # adsketch — All-Distances Sketches with HIP estimators
//!
//! A Rust implementation of Edith Cohen's *All-Distances Sketches,
//! Revisited: HIP Estimators for Massive Graphs Analysis* (PODS 2014):
//! scalable sketches for massive graph and stream analysis, with the
//! Historic Inverse Probability estimators that halve the variance of
//! classic MinHash cardinality estimation and unlock general
//! distance-decay statistics.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] (`adsketch-core`) — all-distances sketches, builders
//!   (PrunedDijkstra / DP / LocalUpdates), HIP estimators, centralities.
//! * [`graph`] (`adsketch-graph`) — the CSR graph substrate, generators,
//!   exact baselines.
//! * [`minhash`] (`adsketch-minhash`) — plain MinHash sketches and the
//!   Section-4 basic estimators.
//! * [`stream`] (`adsketch-stream`) — streaming ADS, HIP distinct
//!   counters, HyperLogLog, Morris counters.
//! * [`ingest`] (`adsketch-ingest`) — dynamic graphs: the append-only
//!   edge log, incremental ADS maintenance (bitwise equal to a
//!   from-scratch rebuild), and the generational freezer.
//! * [`serve`] (`adsketch-serve`) — sharded frozen stores and the
//!   std-only TCP query tier (server, client, load generator), answering
//!   bitwise identically to the local engine; `GenerationStore` hot-swaps
//!   frozen generations under live traffic.
//! * [`util`] (`adsketch-util`) — deterministic RNG, rank hashing,
//!   statistics.
//!
//! ## Quickstart
//!
//! ```
//! use adsketch::core::AdsSet;
//! use adsketch::core::centrality;
//! use adsketch::graph::generators;
//!
//! // A scale-free graph and one set of sketches for all of its nodes.
//! let g = generators::barabasi_albert(1_000, 4, 1);
//! let ads = AdsSet::build(&g, 16, 42);
//!
//! // Any number of queries, each O(k log n), no more graph traversals:
//! let hip = ads.hip(0);
//! let within3 = hip.cardinality_at(3.0);   // |N_3(0)| estimate
//! let hc = centrality::harmonic(&hip);     // harmonic centrality estimate
//! assert!(within3 > 0.0 && hc > 0.0);
//!
//! // For query *serving*, freeze into the columnar store (HIP weights
//! // precomputed, single-buffer checksummed (de)serialization) and
//! // batch across cores:
//! use adsketch::core::{FrozenAdsSet, QueryEngine};
//! let frozen = ads.freeze();
//! let restored = FrozenAdsSet::from_bytes(&frozen.to_bytes()).unwrap();
//! let harmonic_all = QueryEngine::new(&restored).harmonic_all();
//! assert_eq!(harmonic_all[0], hc); // bitwise-identical answers
//! ```

#![forbid(unsafe_code)]

pub use adsketch_core as core;
pub use adsketch_graph as graph;
pub use adsketch_ingest as ingest;
pub use adsketch_minhash as minhash;
pub use adsketch_serve as serve;
pub use adsketch_stream as stream;
pub use adsketch_util as util;
