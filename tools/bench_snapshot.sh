#!/usr/bin/env bash
# Refreshes the repo's committed performance baselines:
#   BENCH_build.json — ADS construction (one record per builder × thread
#   configuration; every configuration is asserted bitwise identical to
#   the sequential builder before being timed), plus one appended
#   `churn_ingest_freeze_swap` row from the dynamic-graph drill: ingest
#   throughput in edges/s (node_queries_per_sec column) and mean
#   freeze-to-published latency (cold_start_ms column), and
#   BENCH_query.json — batch HIP query serving (closeness centrality and
#   neighborhood cardinality over all nodes, frozen columnar store vs
#   per-node heap queries; every backend asserted bitwise identical to
#   the heap baseline before being timed). Rows carry `store_format`
#   (`heap` / `v1` / `v2`) and `store_bytes`, so the snapshot tracks the
#   compressed (v2) format's size win next to its query throughput — the
#   frozen_v2_* rows must stay no slower than their v1 counterparts. And
#   BENCH_serve.json — end-to-end TCP serving (sharded store, concurrent
#   clients over loopback; every served sweep asserted bitwise identical
#   to the local engine before being timed). Rows carry a `tier` field:
#   `direct` single-process rows (including the cold_start_* loader
#   comparison records), `router` rows (Zipf workload, answer cache
#   off), and `router+cache` rows (same workload, cache + coalescing
#   on) — the cache-on rows must beat the cache-off rows on the skewed
#   workload, and `cold_start_mmap` must sit far below `cold_start_copy`.
#
# Quick mode (default): the full-size matrix, one timed iteration per
# configuration —
#     tools/bench_snapshot.sh              # n = 100_000, k = 16
#     N=250000 K=32 tools/bench_snapshot.sh
#
# Smoke mode (CI): compile + one tiny iteration, no timing gates —
#     SMOKE=1 tools/bench_snapshot.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Smoke mode writes to throwaway paths so reproducing CI locally can
# never clobber the committed full-size baselines.
if [[ "${SMOKE:-0}" == "1" ]]; then
  BUILD_ARGS=(--k "${K:-16}" --json target/BENCH_build.smoke.json --smoke)
  QUERY_ARGS=(--k "${K:-16}" --json target/BENCH_query.smoke.json --smoke)
  SERVE_ARGS=(--k "${K:-16}" --json target/BENCH_serve.smoke.json --smoke)
else
  BUILD_ARGS=(--k "${K:-16}" --json BENCH_build.json --n "${N:-100000}")
  QUERY_ARGS=(--k "${K:-16}" --json BENCH_query.json --n "${N:-100000}")
  SERVE_ARGS=(--k "${K:-16}" --json BENCH_serve.json --n "${N:-100000}")
fi

cargo run --release -p adsketch-bench --bin tbl_parallel -- "${BUILD_ARGS[@]}"
cargo run --release -p adsketch-bench --bin tbl_query -- "${QUERY_ARGS[@]}"
cargo run --release -p adsketch-serve --bin loadgen -- "${SERVE_ARGS[@]}"
# Dynamic-graph ingest row, appended to the *build* snapshot: throughput
# (edges/s) through the incremental builder + journal, and mean
# freeze-to-published latency in the cold_start_ms column. The drill is
# identity-gated like everything else — every live answer is asserted
# bitwise against a from-scratch oracle build before the row is written.
if [[ "${SMOKE:-0}" == "1" ]]; then
  cargo run --release -p adsketch-serve --bin loadgen -- --churn --smoke \
    --k "${K:-16}" --json target/BENCH_build.smoke.json --append
else
  cargo run --release -p adsketch-serve --bin loadgen -- --churn \
    --k "${K:-16}" --json BENCH_build.json --append
fi
if [[ "${SMOKE:-0}" != "1" ]]; then
  # Distributed-tier rows, appended to the same snapshot: the same
  # Zipf-skewed workload through the router with the answer cache off,
  # then on. Both runs are identity-gated; the cache-on rows must win
  # on the skewed workload. (The coalescing window is deliberately off
  # here — it trades cold-request latency for fan-in reduction, which
  # this low-concurrency loopback workload cannot show; CI's smoke runs
  # and the router test suites keep it exercised.)
  cargo run --release -p adsketch-serve --bin loadgen -- --router 2 \
    --n "${N:-100000}" --k "${K:-16}" --zipf 1.1 \
    --json BENCH_serve.json --append
  cargo run --release -p adsketch-serve --bin loadgen -- --router 2 \
    --n "${N:-100000}" --k "${K:-16}" --zipf 1.1 \
    --cache 67108864 \
    --json BENCH_serve.json --append
fi
if [[ "${SMOKE:-0}" == "1" ]]; then
  # Smoke also sweeps the distributed tier once: a router fronting a
  # 2-backend fleet with the serve-tier fast path (answer cache +
  # coalescing) on, identity-gated like everything else (throwaway
  # JSON — the committed serve baseline stays single-process).
  cargo run --release -p adsketch-serve --bin loadgen -- --router 2 --smoke \
    --k "${K:-16}" --zipf 1.1 --cache 4194304 --coalesce-us 200 \
    --json target/BENCH_serve.router-smoke.json
  # The same smoke sweep on compressed (v2) shards: the identity gates
  # assert the wire path is bitwise identical on the v2 format too.
  cargo run --release -p adsketch-serve --bin loadgen -- --smoke \
    --k "${K:-16}" --format v2 --json target/BENCH_serve.v2-smoke.json
  # And a tiny chaos drill: 2 shards x 2 replicas, the scheduler kills
  # and restarts one backend replica at a time under live load; any
  # client-visible error or identity mismatch fails the run.
  cargo run --release -p adsketch-serve --bin loadgen -- --router 2 --replicas 2 \
    --chaos --smoke --k "${K:-16}" --json target/BENCH_serve.chaos-smoke.json
  echo "smoke snapshots written to target/BENCH_{build,query,serve}.smoke.json (baselines untouched)"
else
  echo "baselines written to BENCH_build.json, BENCH_query.json and BENCH_serve.json"
fi
