#!/usr/bin/env bash
# Refreshes BENCH_build.json, the repo's committed ADS-construction
# performance baseline (one record per builder × thread configuration;
# every configuration is asserted bitwise identical to the sequential
# builder before being timed).
#
# Quick mode (default): the full-size matrix, one timed iteration per
# configuration —
#     tools/bench_snapshot.sh              # n = 100_000, k = 16
#     N=250000 K=32 tools/bench_snapshot.sh
#
# Smoke mode (CI): compile + one tiny iteration, no timing gates —
#     SMOKE=1 tools/bench_snapshot.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Smoke mode writes to a throwaway path so reproducing CI locally can
# never clobber the committed full-size baseline.
if [[ "${SMOKE:-0}" == "1" ]]; then
  ARGS=(--k "${K:-16}" --json target/BENCH_build.smoke.json --smoke)
else
  ARGS=(--k "${K:-16}" --json BENCH_build.json --n "${N:-100000}")
fi

cargo run --release -p adsketch-bench --bin tbl_parallel -- "${ARGS[@]}"
if [[ "${SMOKE:-0}" == "1" ]]; then
  echo "smoke snapshot written to target/BENCH_build.smoke.json (baseline untouched)"
else
  echo "baseline written to BENCH_build.json"
fi
