//! The distributed serving topology end to end: build →
//! `freeze_sharded` → a **replica set** of backend processes per shard
//! (each loads only its own shard) → a stateless router in front, with
//! hedged reads enabled → batch-query the router — verifying every
//! merged answer is bitwise identical to the local [`QueryEngine`] on
//! the unsharded store, including cross-shard Jaccard pairs — then kill
//! one replica and query straight through the hole.
//!
//! ```text
//! cargo run --release --example router_quickstart
//! ```
//!
//! The "processes" here are in-process threads so the example is
//! self-contained; in a real deployment each [`BackendStore`] server
//! and the router run as separate OS processes on separate hosts (see
//! README, "Serving at scale").

use adsketch::core::frozen::SHARD_MANIFEST_FILE;
use adsketch::core::{freeze_sharded, AdsSet, AdsView, QueryEngine, ShardManifest};
use adsketch::graph::{generators, NodeId};
use adsketch::serve::{BackendStore, Client, RequestStore, Router, RouterConfig};

/// CI runs every example with `ADSKETCH_EXAMPLE_TINY=1` (see ci.yml).
fn tiny() -> bool {
    std::env::var_os("ADSKETCH_EXAMPLE_TINY").is_some()
}

fn main() {
    let n = if tiny() { 300 } else { 10_000 };
    let shards = 3;
    let g = generators::barabasi_albert(n, 4, 7);
    let k = 16;

    // Build once, freeze into one file per shard plus the manifest.
    let ads = AdsSet::build_parallel(&g, k, 42, 0);
    let dir = std::env::temp_dir().join("adsketch_router_quickstart");
    let _ = std::fs::remove_dir_all(&dir);
    freeze_sharded(&ads, shards, &dir).expect("freeze_sharded");

    // A replica set per shard: every replica of shard i loads ONLY that
    // shard file and serves its manifest node range on its own port.
    let replicas = 2;
    let mut backend_addrs: Vec<Vec<std::net::SocketAddr>> = vec![Vec::new(); shards];
    let mut backend_handles = Vec::with_capacity(shards * replicas);
    let mut backend_threads = Vec::with_capacity(shards * replicas);
    for (i, shard_addrs) in backend_addrs.iter_mut().enumerate() {
        for r in 0..replicas {
            let store = BackendStore::load(&dir, i).expect("load backend shard");
            if r == 0 {
                println!(
                    "shard {i}: nodes {:?} ({} entries resident per replica)",
                    store.owned_range(),
                    store.total_entries()
                );
            }
            let server = store.into_server("127.0.0.1:0", 2).expect("bind backend");
            shard_addrs.push(server.local_addr().expect("backend addr"));
            backend_handles.push(server.handle());
            backend_threads.push(std::thread::spawn(move || server.run()));
        }
    }

    // A stateless router in front: it holds no sketch data, only the
    // manifest's node-range table and the replica addresses. Hedged
    // reads are safe to enable because replicas answer identical bits.
    let manifest = ShardManifest::load(dir.join(SHARD_MANIFEST_FILE)).expect("manifest");
    let config = RouterConfig {
        hedge_delay: Some(std::time::Duration::from_millis(20)),
        ..RouterConfig::default()
    };
    let router = Router::bind("127.0.0.1:0", manifest, backend_addrs.clone(), 2, config)
        .expect("bind router");
    let addr = router.local_addr().expect("router addr");
    let handle = router.handle();
    let router_thread = std::thread::spawn(move || router.run());
    println!("\nrouter at {addr} over {shards} shards x {replicas} replicas: {backend_addrs:?}");

    // Clients talk to the router exactly as they would to a
    // single-process server — same protocol, same answers.
    let mut client = Client::connect(addr).expect("connect router");
    let nodes: Vec<NodeId> = (0..n as NodeId).collect();
    let harmonic = client.harmonic(&nodes).expect("harmonic batch");
    let within3: Vec<(NodeId, f64)> = nodes.iter().map(|&v| (v, 3.0)).collect();
    let cardinality = client.cardinality(&within3).expect("cardinality batch");
    // Antipodal pairs land on different shards: the router fetches each
    // endpoint's sketch prefix from its owner and merges.
    let pairs: Vec<(NodeId, NodeId)> = (0..n as NodeId / 2)
        .map(|v| (v, v + n as NodeId / 2))
        .collect();
    let jaccard = client.jaccard(3.0, &pairs).expect("jaccard batch");

    // Every merged answer matches the local engine on the *unsharded*
    // store bit for bit.
    let frozen = ads.freeze();
    let local = QueryEngine::new(&frozen);
    assert_eq!(harmonic, local.harmonic_batch(&nodes));
    assert_eq!(cardinality, local.cardinality_batch(&within3));
    assert_eq!(jaccard, local.jaccard_batch(&pairs, 3.0));
    println!(
        "routed {} harmonic + {} cardinality + {} cross-shard jaccard answers — \
         all bitwise identical to the local engine",
        harmonic.len(),
        cardinality.len(),
        jaccard.len()
    );

    // Kill shard 0's first replica and query straight through the hole:
    // the router fails the legs over to the surviving replica, and the
    // answers do not change by a single bit.
    backend_handles.remove(0).shutdown();
    backend_threads
        .remove(0)
        .join()
        .expect("backend thread")
        .expect("backend run");
    let after_loss = client
        .harmonic(&nodes)
        .expect("harmonic after replica loss");
    assert_eq!(after_loss, local.harmonic_batch(&nodes));
    println!("killed one replica of shard 0 — answers unchanged, no client-visible error");

    // Shutdown ordering: router first (it drains in-flight client
    // work), then the backends.
    drop(client);
    handle.shutdown();
    router_thread
        .join()
        .expect("router thread")
        .expect("router run");
    for h in backend_handles {
        h.shutdown();
    }
    for t in backend_threads {
        t.join().expect("backend thread").expect("backend run");
    }
    std::fs::remove_dir_all(&dir).ok();
}
