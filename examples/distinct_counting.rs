//! Approximate distinct counting on a stream: HIP vs HyperLogLog on the
//! *same* sketch (the paper's Section 6 comparison), plus the compact
//! Morris-backed variant.
//!
//! ```text
//! cargo run --release --example distinct_counting
//! ```

use adsketch::stream::counter::{DistinctCounter, HipBottomKCounter, MorrisAccumulator};
use adsketch::stream::{HipHll, MorrisCounter};
use adsketch::util::rng::{Rng64, Xoshiro256pp};
use adsketch::util::RankHasher;

/// CI runs every example with `ADSKETCH_EXAMPLE_TINY=1` (see ci.yml).
fn tiny() -> bool {
    std::env::var_os("ADSKETCH_EXAMPLE_TINY").is_some()
}

fn main() {
    // A skewed stream: 5 million occurrences of 1 million possible items,
    // zipf-ish repetition (low ids recur constantly).
    let (occurrences, domain) = if tiny() {
        (100_000u64, 20_000u64)
    } else {
        (5_000_000u64, 1_000_000u64)
    };
    let mut rng = Xoshiro256pp::new(17);
    let hasher = RankHasher::new(5);

    let k = 64;
    let mut hip_hll = HipHll::new(k); // 64 5-bit registers + one float
    let mut hip_botk = HipBottomKCounter::new(k, 5);
    let morris_acc = MorrisAccumulator(MorrisCounter::new(1.0 + 1.0 / k as f64, 23));
    let mut hip_morris = HipBottomKCounter::with_accumulator(k, 5, morris_acc);

    let mut truth = std::collections::HashSet::new();
    let t0 = std::time::Instant::now();
    println!(
        "{:>12} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "seen", "distinct", "HLL", "HIP-HLL", "HIP-botk", "HIP+Morris"
    );
    for i in 1..=occurrences {
        // Skewed draw: half the stream hits the first 1000 items.
        let e = if rng.bernoulli(0.5) {
            rng.range_u64(1000)
        } else {
            rng.range_u64(domain)
        };
        truth.insert(e);
        hip_hll.insert(&hasher, e);
        hip_botk.insert(e);
        hip_morris.insert(e);
        if i.is_multiple_of(occurrences / 5) {
            println!(
                "{:>12} {:>12} {:>10.0} {:>10.0} {:>12.0} {:>12.0}",
                i,
                truth.len(),
                hip_hll.sketch().estimate(),
                hip_hll.estimate(),
                hip_botk.estimate(),
                hip_morris.estimate()
            );
        }
    }
    let n = truth.len() as f64;
    println!(
        "\nprocessed {occurrences} occurrences in {:.2?}",
        t0.elapsed()
    );
    for (name, est) in [
        ("HyperLogLog (bias-corrected)", hip_hll.sketch().estimate()),
        ("HIP on the HLL sketch       ", hip_hll.estimate()),
        ("HIP bottom-k (exact acc)    ", hip_botk.estimate()),
        ("HIP bottom-k (Morris acc)   ", hip_morris.estimate()),
    ] {
        println!(
            "{name}: {est:>12.0}  (truth {n:.0}, err {:+.2}%)",
            (est - n) / n * 100.0
        );
    }
    println!(
        "\nsketch budgets: HLL/HIP-HLL = {k} 5-bit registers (+1 float for HIP); \
         bottom-k = {k} (rank, id) pairs; Morris accumulator exponent = a few bits"
    );
}
