//! Streaming all-distances sketches (paper, Section 3.1): time-decaying
//! distinct counts over an event stream via the recency ADS, and
//! first-occurrence prefix counts.
//!
//! ```text
//! cargo run --release --example streaming_ads
//! ```

use adsketch::stream::streaming_ads::{FirstOccurrenceAds, RecencyAds};
use adsketch::util::rng::{Rng64, Xoshiro256pp};

/// CI runs every example with `ADSKETCH_EXAMPLE_TINY=1` (see ci.yml).
fn tiny() -> bool {
    std::env::var_os("ADSKETCH_EXAMPLE_TINY").is_some()
}

fn main() {
    let k = 32;
    let horizon = if tiny() { 5_000u64 } else { 100_000u64 };
    let mut rng = Xoshiro256pp::new(4);

    // Event stream: at each tick one user acts; the active-user pool
    // drifts over time (user u is active around tick 10·u).
    let mut first = FirstOccurrenceAds::new(k, 9);
    let mut recent = RecencyAds::new(k, 9);
    let mut seen_at: Vec<(u64, u64)> = Vec::new(); // (tick, user), for truth
    for t in 0..horizon {
        let center = t / 10;
        let user = center.saturating_sub(rng.range_u64(2_000));
        first.observe(user, t as f64);
        recent.observe(user, t as f64);
        seen_at.push((t, user));
    }

    // Prefix query: distinct users during the first half.
    let half = (horizon / 2) as f64;
    let truth_half = {
        let mut s = std::collections::HashSet::new();
        for &(t, u) in &seen_at {
            if (t as f64) <= half {
                s.insert(u);
            }
        }
        s.len() as f64
    };
    println!(
        "distinct users in the first half: est {:.0}, truth {truth_half} ({:+.2}%)",
        first.distinct_until(half),
        (first.distinct_until(half) - truth_half) / truth_half * 100.0
    );

    // Sliding-window queries: distinct users active in the last W ticks.
    println!(
        "\nsliding windows over the recency ADS (sketch holds {} entries):",
        recent.entries().len()
    );
    println!(
        "{:>10} {:>12} {:>10} {:>8}",
        "window", "estimate", "truth", "err%"
    );
    let windows: [u64; 4] = if tiny() {
        [100, 500, 1_000, 2_500]
    } else {
        [1_000, 5_000, 20_000, 50_000]
    };
    for w in windows {
        let t_min = (horizon - w) as f64;
        let est = recent.distinct_since(t_min);
        let truth = {
            let mut s = std::collections::HashSet::new();
            for &(t, u) in &seen_at {
                if t as f64 >= t_min {
                    s.insert(u);
                }
            }
            s.len() as f64
        };
        println!(
            "{:>10} {:>12.0} {:>10} {:>8.2}",
            w,
            est,
            truth,
            (est - truth) / truth * 100.0
        );
    }
    println!(
        "\nnote: one size-O(k) recency sketch answers *every* window length; \
         the stream itself was {horizon} events."
    );
}
