//! ANF/HyperANF-style analysis: estimate the distance distribution and
//! effective diameter of a graph from its ADS set, without all-pairs
//! shortest paths.
//!
//! ```text
//! cargo run --release --example distance_distribution
//! ```

use adsketch::core::AdsSet;
use adsketch::graph::{exact, generators};

/// CI runs every example with `ADSKETCH_EXAMPLE_TINY=1` (see ci.yml).
fn tiny() -> bool {
    std::env::var_os("ADSKETCH_EXAMPLE_TINY").is_some()
}

fn main() {
    // A small-world graph: ring lattice + rewiring (Watts–Strogatz).
    let n = if tiny() { 400 } else { 3_000 };
    let edges = generators::watts_strogatz_edges(n, 4, 0.05, 11);
    let g = adsketch::graph::Graph::undirected(n, &edges).expect("valid edges");
    println!(
        "small-world graph: {} nodes, {} edges",
        g.num_nodes(),
        g.num_arcs() / 2
    );

    // Sketch-based distance distribution (one ADS build).
    let t0 = std::time::Instant::now();
    let ads = AdsSet::build(&g, 16, 3);
    let dd_est = ads.distance_distribution_estimate();
    let est_time = t0.elapsed();

    // Exact distance distribution (n BFS traversals) for comparison.
    let t1 = std::time::Instant::now();
    let dd_exact = exact::distance_distribution(&g);
    let exact_time = t1.elapsed();

    println!("\nestimated via ADS in {est_time:.2?}; exact all-pairs in {exact_time:.2?}");

    let total_est = dd_est.last().map_or(0.0, |&(_, c)| c);
    let total_exact = dd_exact.connected_pairs() as f64;
    println!(
        "connected ordered pairs: est {total_est:.0}, exact {total_exact} ({:+.2}%)",
        (total_est - total_exact) / total_exact * 100.0
    );

    println!("\ncumulative pairs within distance d:");
    println!(
        "{:>5} {:>14} {:>14} {:>8}",
        "d", "estimate", "exact", "err%"
    );
    for &(d, est) in &dd_est {
        let exact = lookup(&dd_exact, d);
        if (d as u64).is_multiple_of(2) || d <= 6.0 {
            println!(
                "{:>5} {:>14.0} {:>14} {:>8.2}",
                d,
                est,
                exact,
                (est - exact as f64) / exact as f64 * 100.0
            );
        }
    }

    // Effective diameter (90th percentile distance).
    let eff_exact = dd_exact.effective_diameter(0.9);
    let eff_est = effective_diameter_from(&dd_est, 0.9);
    println!("\neffective diameter (q = 0.9): est {eff_est}, exact {eff_exact}");
}

fn lookup(dd: &exact::DistanceDistribution, d: f64) -> u64 {
    match dd.distances.binary_search_by(|x| x.total_cmp(&d)) {
        Ok(i) => dd.pairs[i],
        Err(0) => 0,
        Err(i) => dd.pairs[i - 1],
    }
}

fn effective_diameter_from(dd: &[(f64, f64)], q: f64) -> f64 {
    let total = dd.last().map_or(0.0, |&(_, c)| c);
    for &(d, c) in dd {
        if c >= q * total {
            return d;
        }
    }
    dd.last().map_or(0.0, |&(d, _)| d)
}
