//! Social-network centrality at scale: rank users of a synthetic social
//! graph by HIP-estimated harmonic centrality, then answer *filtered*
//! centrality queries ("centrality counting only premium users") from the
//! same sketches — the workload the paper's introduction motivates.
//!
//! ```text
//! cargo run --release --example social_centrality
//! ```

use adsketch::core::centrality::{self, DecayKernel};
use adsketch::core::AdsSet;
use adsketch::graph::{exact, generators, NodeId};
use adsketch::util::rng::{Rng64, SplitMix64};

/// CI runs every example with `ADSKETCH_EXAMPLE_TINY=1` (see ci.yml).
fn tiny() -> bool {
    std::env::var_os("ADSKETCH_EXAMPLE_TINY").is_some()
}

fn main() {
    // 20 000-member social graph with heavy-tailed degrees.
    let n = if tiny() { 500 } else { 20_000 };
    let g = generators::barabasi_albert(n, 5, 2024);
    println!(
        "social graph: {} members, {} friendships",
        g.num_nodes(),
        g.num_arcs() / 2
    );

    // Synthetic member attribute, assigned independently of the graph:
    // ~10% "premium" members. β filters are applied at query time.
    let mut rng = SplitMix64::new(99);
    let premium: Vec<bool> = (0..n).map(|_| rng.bernoulli(0.1)).collect();

    // Sketch once…
    let k = 32;
    let t0 = std::time::Instant::now();
    let ads = AdsSet::build(&g, k, 7);
    println!(
        "built k={k} sketches for all nodes in {:.2?} ({:.1} entries/node)",
        t0.elapsed(),
        ads.mean_entries()
    );

    // …then rank everyone by estimated harmonic centrality.
    let t1 = std::time::Instant::now();
    let mut scored: Vec<(NodeId, f64)> = (0..n as NodeId)
        .map(|v| (v, centrality::harmonic(&ads.hip(v))))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("scored all nodes in {:.2?}", t1.elapsed());

    println!("\ntop-10 by estimated harmonic centrality (exact in parens):");
    for &(v, est) in scored.iter().take(10) {
        let exact = exact::harmonic_centrality(&g, v);
        let deg = g.out_degree(v);
        println!("  node {v:>6}  est {est:>9.1}  (exact {exact:>9.1})  degree {deg}");
    }

    // Filtered query, same sketches: harmonic centrality restricted to
    // premium members (β(j) = 1 iff premium).
    let beta = |v: NodeId| if premium[v as usize] { 1.0 } else { 0.0 };
    let top = scored[0].0;
    let est = centrality::decay_filtered(&ads.hip(top), DecayKernel::Harmonic, beta);
    let exact = exact::centrality_exact(&g, top, |d| if d > 0.0 { 1.0 / d } else { 0.0 }, beta);
    println!(
        "\npremium-only harmonic centrality of the top node {top}: est {est:.1}, exact {exact:.1}"
    );

    // Exponentially attenuated "influence" with β = premium, for three
    // contenders — still zero extra graph traversals.
    println!("\npremium-weighted exponential influence (α = 2^-d):");
    for &(v, _) in scored.iter().take(3) {
        let inf =
            centrality::decay_filtered(&ads.hip(v), DecayKernel::Exponential { base: 2.0 }, beta);
        println!("  node {v:>6}: {inf:.2}");
    }
}
