//! The full serving lifecycle: build → `freeze_sharded` → load the
//! sharded store → serve over TCP → batch-query from a client —
//! verifying every served answer is bitwise identical to the local
//! [`QueryEngine`] on the unsharded store.
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```

use std::sync::Arc;

use adsketch::core::centrality::DecayKernel;
use adsketch::core::{freeze_sharded, AdsSet, QueryEngine};
use adsketch::graph::{generators, NodeId};
use adsketch::serve::{Client, Server, ShardedStore};

/// CI runs every example with `ADSKETCH_EXAMPLE_TINY=1` (see ci.yml).
fn tiny() -> bool {
    std::env::var_os("ADSKETCH_EXAMPLE_TINY").is_some()
}

fn main() {
    let n = if tiny() { 300 } else { 10_000 };
    let shards = 4;
    let g = generators::barabasi_albert(n, 4, 7);
    let k = 16;

    // Build once, then freeze into a sharded store: S full-width v1
    // shard files plus the checksummed ADSKSHD1 manifest.
    let ads = AdsSet::build_parallel(&g, k, 42, 0);
    let dir = std::env::temp_dir().join("adsketch_serve_quickstart");
    let _ = std::fs::remove_dir_all(&dir);
    let manifest = freeze_sharded(&ads, shards, &dir).expect("freeze_sharded");
    println!(
        "froze {} sketches ({} entries) into {} shards:",
        manifest.num_nodes(),
        manifest.total_entries(),
        manifest.num_shards()
    );
    for (i, rec) in manifest.records().iter().enumerate() {
        println!(
            "  shard {i}: nodes {:>6}..{:<6} {:>8} entries  digest {:#018x}",
            rec.start, rec.end, rec.entries, rec.digest
        );
    }

    // Load (all shards stream in parallel, digests verified) and serve.
    let store = Arc::new(ShardedStore::load(&dir).expect("load sharded store"));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&store), 2).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());
    println!("\nserving {n} nodes from {addr} ({shards} shards, 2 workers)");

    // A client batch-queries over the wire.
    let mut client = Client::connect(addr).expect("connect");
    let nodes: Vec<NodeId> = (0..n as NodeId).collect();
    let harmonic = client.harmonic(&nodes).expect("harmonic batch");
    let within3: Vec<(NodeId, f64)> = nodes.iter().map(|&v| (v, 3.0)).collect();
    let cardinality = client.cardinality(&within3).expect("cardinality batch");
    let decayed = client
        .decay(
            DecayKernel::Exponential { base: 2.0 },
            &nodes[..nodes.len() / 2],
        )
        .expect("decay batch");

    // Every served answer matches the local engine on the *unsharded*
    // store bit for bit.
    let frozen = ads.freeze();
    let local = QueryEngine::new(&frozen);
    assert_eq!(harmonic, local.harmonic_batch(&nodes));
    assert_eq!(cardinality, local.cardinality_batch(&within3));
    assert_eq!(
        decayed,
        local.decay_batch(
            DecayKernel::Exponential { base: 2.0 },
            &nodes[..nodes.len() / 2]
        )
    );
    println!(
        "served {} harmonic + {} cardinality + {} decay answers — all bitwise \
         identical to the local engine",
        harmonic.len(),
        cardinality.len(),
        decayed.len()
    );

    let mut top: Vec<(NodeId, f64)> = harmonic
        .iter()
        .copied()
        .enumerate()
        .map(|(v, c)| (v as NodeId, c))
        .collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 nodes by served harmonic centrality:");
    for &(v, c) in top.iter().take(5) {
        println!("  node {v:>6}: {c:>10.1}");
    }

    drop(client);
    handle.shutdown();
    server_thread
        .join()
        .expect("server thread")
        .expect("server run");
    std::fs::remove_dir_all(&dir).ok();
}
