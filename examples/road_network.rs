//! Weighted-graph workload: a synthetic road network (grid with
//! travel-time weights and diagonal shortcuts). Demonstrates ADSs over
//! real-valued distances: reachability-within-budget queries, per-node
//! effective radius (distance quantiles), and facility scoring.
//!
//! ```text
//! cargo run --release --example road_network
//! ```

use adsketch::core::ads_set::build_with_ranks;
use adsketch::core::{uniform_ranks, AdsSet};
use adsketch::graph::{exact, generators, Graph, NodeId};
use adsketch::util::rng::{Rng64, SplitMix64};

/// CI runs every example with `ADSKETCH_EXAMPLE_TINY=1` (see ci.yml).
fn tiny() -> bool {
    std::env::var_os("ADSKETCH_EXAMPLE_TINY").is_some()
}

fn main() {
    // 60×60 grid of intersections; edge weight = travel minutes
    // (quantized uniform 1..4), plus a few hundred random shortcuts
    // ("highways") with faster effective speed.
    let (rows, cols) = if tiny() {
        (14usize, 14usize)
    } else {
        (60usize, 60usize)
    };
    let n = rows * cols;
    let mut edges = generators::grid_edges(rows, cols);
    let mut rng = SplitMix64::new(404);
    for _ in 0..if tiny() { 40 } else { 400 } {
        let a = rng.range_usize(n) as NodeId;
        let b = rng.range_usize(n) as NodeId;
        if a != b {
            edges.push((a, b));
        }
    }
    let n_grid_edges = 2 * rows * cols - rows - cols;
    let mut weighted = generators::assign_uniform_weights(&edges[..n_grid_edges], 1.0, 4.0, 5);
    // Highways: weight 2..6 regardless of span — big shortcuts.
    weighted.extend(generators::assign_uniform_weights(
        &edges[n_grid_edges..],
        2.0,
        6.0,
        6,
    ));
    let g = Graph::undirected_weighted(n, &weighted).expect("valid edges");
    println!(
        "road network: {} intersections, {} road segments (incl. {} highways)",
        g.num_nodes(),
        g.num_arcs() / 2,
        edges.len() - n_grid_edges
    );

    let k = 32;
    let t0 = std::time::Instant::now();
    let ranks = uniform_ranks(n, 11);
    let ads: AdsSet = build_with_ranks(&g, k, &ranks).expect("valid ranks");
    println!("sketched every intersection in {:.2?}", t0.elapsed());

    // "How many intersections are reachable within a T-minute drive?"
    let depot = ((rows / 2) * cols + cols / 2) as NodeId; // city center
    let nf = exact::neighborhood_function(&g, depot);
    println!("\nreachable intersections from the center depot (node {depot}):");
    println!("{:>9} {:>10} {:>8}", "budget", "HIP est", "exact");
    let hip = ads.hip(depot);
    for t in [10.0, 20.0, 40.0, 80.0] {
        println!(
            "{:>6} min {:>10.0} {:>8}",
            t,
            hip.cardinality_at(t),
            nf.cardinality_at(t)
        );
    }

    // Effective radius (median travel time) across sample intersections.
    println!("\nmedian travel time to the reachable set (distance quantile q=0.5):");
    for v in [0u32, depot, (n - 1) as u32] {
        let est = ads.hip(v).distance_quantile(0.5).unwrap_or(f64::NAN);
        let exact = exact_median(&g, v);
        println!("  node {v:>5}: est {est:>6.1} min, exact {exact:>6.1} min");
    }

    // Facility scoring: rank candidate depots by estimated 30-minute
    // coverage; verify the top pick against exact coverage.
    let candidates: Vec<NodeId> = (0..20).map(|_| rng.range_usize(n) as NodeId).collect();
    let mut scored: Vec<(NodeId, f64)> = candidates
        .iter()
        .map(|&v| (v, ads.hip(v).cardinality_at(30.0)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nbest of 20 random depot candidates by 30-minute coverage:");
    for &(v, score) in scored.iter().take(3) {
        let exact = exact::neighborhood_function(&g, v).cardinality_at(30.0);
        println!("  node {v:>5}: est {score:>7.0}, exact {exact}");
    }
}

fn exact_median(g: &Graph, v: NodeId) -> f64 {
    let mut d: Vec<f64> = adsketch::graph::dijkstra::dijkstra_distances(g, v)
        .into_iter()
        .filter(|d| d.is_finite())
        .collect();
    d.sort_unstable_by(f64::total_cmp);
    d[d.len() / 2]
}
