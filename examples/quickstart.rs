//! Quickstart: build all-distances sketches for a graph, run HIP queries,
//! and compare against exact answers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adsketch::core::{centrality, AdsSet};
use adsketch::graph::{exact, generators};

/// CI runs every example with `ADSKETCH_EXAMPLE_TINY=1` (see ci.yml).
fn tiny() -> bool {
    std::env::var_os("ADSKETCH_EXAMPLE_TINY").is_some()
}

fn main() {
    // A scale-free "social" graph: 2 000 nodes, preferential attachment.
    let n = if tiny() { 300 } else { 2_000 };
    let g = generators::barabasi_albert(n, 4, 7);
    println!(
        "graph: {} nodes, {} edges (Barabási–Albert m=4)",
        g.num_nodes(),
        g.num_arcs() / 2
    );

    // One pass builds the sketches for *all* nodes (k controls accuracy:
    // HIP neighborhood-cardinality CV ≈ 1/sqrt(2(k−1)) ≈ 0.18 for k = 16).
    let k = 16;
    let ads = AdsSet::build(&g, k, 42);
    println!(
        "built bottom-{k} ADS set: {} entries total, {:.1} per node (Lemma 2.2 predicts ≈ {:.1})",
        ads.total_entries(),
        ads.mean_entries(),
        adsketch::util::harmonic::expected_bottomk_ads_size(n as u64, k)
    );

    // Neighborhood cardinalities of node 0 at a few distances, vs exact.
    let hip = ads.hip(0);
    let nf_exact = exact::neighborhood_function(&g, 0);
    println!("\nneighborhood sizes of node 0 (estimate vs exact):");
    println!("{:>6} {:>12} {:>8}", "dist", "HIP est", "exact");
    for d in [1.0, 2.0, 3.0, 4.0] {
        println!(
            "{:>6} {:>12.1} {:>8}",
            d,
            hip.cardinality_at(d),
            nf_exact.cardinality_at(d)
        );
    }

    // Harmonic centrality of a few nodes, vs exact.
    println!("\nharmonic centrality (estimate vs exact):");
    println!("{:>6} {:>12} {:>10}", "node", "HIP est", "exact");
    for v in [0u32, 10, 100, n as u32 - 1] {
        println!(
            "{:>6} {:>12.1} {:>10.1}",
            v,
            centrality::harmonic(&ads.hip(v)),
            exact::harmonic_centrality(&g, v)
        );
    }

    // A general Q_g statistic: total edge-distance mass within 2 hops,
    // filtered to even-id nodes — β chosen *after* the sketches exist.
    let q = ads.hip(0).centrality(
        |d| if d <= 2.0 { 1.0 } else { 0.0 },
        |v| if v % 2 == 0 { 1.0 } else { 0.0 },
    );
    let q_exact = exact::centrality_exact(
        &g,
        0,
        |d| if d <= 2.0 { 1.0 } else { 0.0 },
        |v| if v % 2 == 0 { 1.0 } else { 0.0 },
    );
    println!("\neven-id nodes within 2 hops of node 0: est {q:.1}, exact {q_exact}");
}
