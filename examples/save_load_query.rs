//! The build → freeze → save → load → batch-query lifecycle: sketch a
//! graph once, persist the frozen store, and serve centrality /
//! cardinality / similarity batches from the reloaded bytes — verifying
//! every answer is bitwise identical to the in-memory sketches.
//!
//! ```text
//! cargo run --release --example save_load_query
//! ```

use adsketch::core::{centrality, AdsSet, FrozenAdsSet, QueryEngine};
use adsketch::graph::{generators, NodeId};

/// CI runs every example with `ADSKETCH_EXAMPLE_TINY=1` (see ci.yml).
fn tiny() -> bool {
    std::env::var_os("ADSKETCH_EXAMPLE_TINY").is_some()
}

fn main() {
    let n = if tiny() { 300 } else { 10_000 };
    let g = generators::barabasi_albert(n, 4, 7);
    let k = 16;

    // Build once (the expensive graph-traversal phase)…
    let ads = AdsSet::build_parallel(&g, k, 42, 0);
    // …freeze into the columnar query form with HIP weights precomputed…
    let frozen = ads.freeze();
    println!(
        "built and froze {} sketches: {} entries, heap ≈ {} B → frozen {} B ({} B on disk)",
        frozen.num_nodes(),
        frozen.num_entries(),
        ads.approx_heap_bytes(),
        frozen.resident_bytes(),
        frozen.serialized_len()
    );

    // …persist, then reload as a service would at startup.
    let path = std::env::temp_dir().join("adsketch_save_load_query.ads");
    frozen.save(&path).expect("write frozen store");
    let loaded = FrozenAdsSet::load(&path).expect("read frozen store");
    assert_eq!(loaded, frozen, "the on-disk round trip is lossless");
    println!(
        "saved + reloaded {} bytes from {}",
        frozen.serialized_len(),
        path.display()
    );

    // Batch queries, sharded across all cores, zero graph access.
    let engine = QueryEngine::new(&loaded);
    let harmonic = engine.harmonic_all();
    let queries: Vec<(NodeId, f64)> = (0..n as NodeId).map(|v| (v, 3.0)).collect();
    let within3 = engine.cardinality_batch(&queries);
    let pairs: Vec<(NodeId, NodeId)> = (0..(n as NodeId) / 2).map(|i| (i, i + 1)).collect();
    let jaccard = engine.jaccard_batch(&pairs, 2.0);

    // Every answer matches the heap-backed sketches bit for bit.
    for v in 0..n as NodeId {
        assert_eq!(harmonic[v as usize], centrality::harmonic(&ads.hip(v)));
        assert_eq!(within3[v as usize], ads.hip(v).cardinality_at(3.0));
    }
    println!(
        "served {} harmonic + {} cardinality + {} similarity queries from the loaded store",
        harmonic.len(),
        within3.len(),
        jaccard.len()
    );

    let mut top: Vec<(NodeId, f64)> = harmonic
        .iter()
        .copied()
        .enumerate()
        .map(|(v, c)| (v as NodeId, c))
        .collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 nodes by estimated harmonic centrality:");
    for &(v, c) in top.iter().take(5) {
        println!("  node {v:>6}: {c:>10.1}");
    }

    std::fs::remove_file(&path).ok();
}
