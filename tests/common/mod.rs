//! Shared harness for the distributed-tier integration tests: scratch
//! dirs, backend/router spawning over replica sets, the mode-switchable
//! flaky proxy, and the bitwise request-battery assertion.

#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use adsketch::core::centrality::DecayKernel;
use adsketch::core::frozen::SHARD_MANIFEST_FILE;
use adsketch::core::{freeze_sharded, AdsSet, AdsView, FrozenAdsSet, QueryEngine, ShardManifest};
use adsketch::graph::NodeId;
use adsketch::serve::proto::{ERR_BACKEND, WIRE_VERSION};
use adsketch::serve::{
    BackendStore, CacheStatsHandle, Client, Router, RouterConfig, ServeError, ServerHandle,
};

/// Tight deadlines so fault scenarios resolve in test time. The failure
/// threshold is high enough that single-replica fault tests never open
/// the circuit — recovery must be instant once the backend heals, not
/// gated on the background prober.
pub fn fast_config() -> RouterConfig {
    RouterConfig {
        connect_timeout: Duration::from_millis(250),
        read_timeout: Duration::from_millis(400),
        retries: 1,
        failure_threshold: 25,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(100),
        probe_interval: Duration::from_millis(25),
        hedge_delay: None,
        degraded: false,
        cache_bytes: 0,
        coalesce_window: None,
    }
}

/// [`fast_config`] with the serve-tier fast path fully on: an answer
/// cache plus a short cross-client coalescing window. Answers must stay
/// bitwise identical to the cold path.
pub fn fast_path_config() -> RouterConfig {
    RouterConfig {
        cache_bytes: 1 << 20,
        coalesce_window: Some(Duration::from_millis(2)),
        ..fast_config()
    }
}

/// A temp dir that wipes itself on drop.
pub struct Scratch(pub std::path::PathBuf);

impl Scratch {
    pub fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("adsketch_test_router_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// An ephemeral-port address nothing listens on (bound once, then
/// dropped, so connects are refused immediately).
pub fn dead_port() -> SocketAddr {
    TcpListener::bind("127.0.0.1:0")
        .expect("reserve port")
        .local_addr()
        .expect("addr")
}

pub fn assert_backend_error(err: ServeError) -> String {
    match err {
        ServeError::Remote { code, message } => {
            assert_eq!(code, ERR_BACKEND, "wrong error code: {message}");
            message
        }
        other => panic!("expected a typed ERR_BACKEND frame, got {other}"),
    }
}

/// Loads shard `shard` from `dir` and serves it on `addr` (`port 0` for
/// ephemeral; a replica restarting on its old address retries briefly —
/// rebinding a just-released port can race the old socket's teardown).
pub fn spawn_backend_at(
    dir: &std::path::Path,
    shard: usize,
    addr: SocketAddr,
    workers: usize,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<u64>>,
) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let store = BackendStore::load(dir, shard).expect("load backend shard");
        match store.into_server(addr, workers) {
            Ok(server) => {
                let addr = server.local_addr().expect("backend addr");
                let handle = server.handle();
                let join = std::thread::spawn(move || server.run());
                return (addr, handle, join);
            }
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "rebind backend shard {shard} at {addr}: {e}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

pub fn spawn_backend(
    dir: &std::path::Path,
    shard: usize,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<u64>>,
) {
    spawn_backend_at(dir, shard, "127.0.0.1:0".parse().expect("loopback"), 1)
}

/// Binds a router over explicit replica sets and runs it on a thread.
pub fn spawn_router(
    dir: &std::path::Path,
    replicas: Vec<Vec<SocketAddr>>,
    workers: usize,
    config: RouterConfig,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<u64>>,
) {
    let (addr, handle, join, _) = spawn_router_with_stats(dir, replicas, workers, config);
    (addr, handle, join)
}

/// [`spawn_router`], also returning the answer-cache counters handle
/// (`None` unless the config enables the cache).
pub fn spawn_router_with_stats(
    dir: &std::path::Path,
    replicas: Vec<Vec<SocketAddr>>,
    workers: usize,
    config: RouterConfig,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<u64>>,
    Option<CacheStatsHandle>,
) {
    let manifest = ShardManifest::load(dir.join(SHARD_MANIFEST_FILE)).expect("manifest");
    let router =
        Router::bind("127.0.0.1:0", manifest, replicas, workers, config).expect("bind router");
    let addr = router.local_addr().expect("router addr");
    let handle = router.handle();
    let stats = router.cache_stats();
    let join = std::thread::spawn(move || router.run());
    (addr, handle, join, stats)
}

/// One backend replica of a [`ReplicaFleet`]; `join` is `None` while the
/// replica is killed.
pub struct ReplicaSlot {
    pub addr: SocketAddr,
    handle: ServerHandle,
    join: Option<std::thread::JoinHandle<std::io::Result<u64>>>,
}

/// A full distributed-tier fixture: `shards × replicas` in-process
/// backends plus a router, with per-replica kill/restart. Tears the
/// whole fleet down and wipes the scratch dir on drop.
pub struct ReplicaFleet {
    /// The router's client-facing address.
    pub addr: SocketAddr,
    /// `slots[shard][rep]` — every replica of a shard serves that shard.
    pub slots: Vec<Vec<ReplicaSlot>>,
    /// Router answer-cache counters (`None` when the cache is off).
    pub cache_stats: Option<CacheStatsHandle>,
    router_handle: ServerHandle,
    router_join: Option<std::thread::JoinHandle<std::io::Result<u64>>>,
    workers: usize,
    scratch: Scratch,
}

impl ReplicaFleet {
    /// Freezes `ads` into `shards` shards and spawns `replicas` backend
    /// servers per shard behind a router configured with `config`.
    pub fn spawn(
        ads: &AdsSet,
        shards: usize,
        replicas: usize,
        workers: usize,
        tag: &str,
        config: RouterConfig,
    ) -> Self {
        let scratch = Scratch::new(tag);
        freeze_sharded(ads, shards, &scratch.0).expect("freeze_sharded");
        let any: SocketAddr = "127.0.0.1:0".parse().expect("loopback");
        let mut slots = Vec::with_capacity(shards);
        for shard in 0..shards {
            let mut reps = Vec::with_capacity(replicas);
            for _ in 0..replicas {
                let (addr, handle, join) = spawn_backend_at(&scratch.0, shard, any, workers);
                reps.push(ReplicaSlot {
                    addr,
                    handle,
                    join: Some(join),
                });
            }
            slots.push(reps);
        }
        let addrs = slots
            .iter()
            .map(|reps| reps.iter().map(|s| s.addr).collect())
            .collect();
        let (addr, router_handle, router_join, cache_stats) =
            spawn_router_with_stats(&scratch.0, addrs, workers, config);
        Self {
            addr,
            slots,
            cache_stats,
            router_handle,
            router_join: Some(router_join),
            workers,
            scratch,
        }
    }

    /// Shuts one replica down and waits for its server thread to exit —
    /// after this returns, its port refuses connects.
    pub fn kill(&mut self, shard: usize, rep: usize) {
        let slot = &mut self.slots[shard][rep];
        slot.handle.shutdown();
        slot.join
            .take()
            .expect("replica already killed")
            .join()
            .expect("backend thread")
            .expect("backend run");
    }

    /// Restarts a killed replica on its original address (fresh store
    /// load, same port — exactly a crashed process coming back).
    pub fn restart(&mut self, shard: usize, rep: usize) {
        let addr = self.slots[shard][rep].addr;
        assert!(
            self.slots[shard][rep].join.is_none(),
            "replica {shard}/{rep} is still running"
        );
        let (got, handle, join) = spawn_backend_at(&self.scratch.0, shard, addr, self.workers);
        assert_eq!(got, addr, "restarted replica must keep its address");
        self.slots[shard][rep] = ReplicaSlot {
            addr,
            handle,
            join: Some(join),
        };
    }

    /// A clone of the router's shutdown handle.
    pub fn router_handle(&self) -> ServerHandle {
        self.router_handle.clone()
    }

    /// Stops the router and returns how long shutdown took end to end
    /// (handle call through thread join).
    pub fn shutdown_router_timed(&mut self) -> Duration {
        let t0 = Instant::now();
        self.router_handle.shutdown();
        self.router_join
            .take()
            .expect("router already stopped")
            .join()
            .expect("router thread")
            .expect("router run");
        t0.elapsed()
    }
}

impl Drop for ReplicaFleet {
    fn drop(&mut self) {
        self.router_handle.shutdown();
        if let Some(j) = self.router_join.take() {
            let _ = j.join();
        }
        for reps in &mut self.slots {
            for slot in reps {
                slot.handle.shutdown();
                if let Some(j) = slot.join.take() {
                    let _ = j.join();
                }
            }
        }
    }
}

/// Fires every request type at the router and asserts each response is
/// bitwise equal to the local engine on the unsharded store.
pub fn assert_routed_equals_local(client: &mut Client, ads: &AdsSet, frozen: &FrozenAdsSet) {
    let local = QueryEngine::new(frozen);
    let n = ads.num_nodes() as NodeId;
    let nodes: Vec<NodeId> = (0..n).collect();
    let rev: Vec<NodeId> = (0..n).rev().collect();

    assert_eq!(
        client.harmonic(&nodes).expect("harmonic"),
        local.harmonic_batch(&nodes)
    );
    // A shuffled batch must come back in request order, not shard order.
    assert_eq!(
        client.harmonic(&rev).expect("harmonic rev"),
        local.harmonic_batch(&rev)
    );
    for kernel in [
        DecayKernel::Harmonic,
        DecayKernel::Constant,
        DecayKernel::Threshold(2.0),
        DecayKernel::Exponential { base: 2.0 },
    ] {
        assert_eq!(
            client.decay(kernel, &nodes).expect("decay"),
            local.decay_batch(kernel, &nodes),
            "kernel {kernel:?}"
        );
    }
    let queries: Vec<(NodeId, f64)> = nodes
        .iter()
        .map(|&v| (v, (v % 5) as f64))
        .chain([(0, f64::INFINITY), (n - 1, 0.0)])
        .collect();
    assert_eq!(
        client.cardinality(&queries).expect("cardinality"),
        local.cardinality_batch(&queries)
    );
    assert_eq!(
        client.neighborhood_function(&nodes).expect("nf"),
        local.neighborhood_function_batch(&nodes)
    );
    // Neighbor pairs (mostly same-shard, boundary pairs cross-shard)
    // plus antipodal pairs (mostly cross-shard) — both merge paths.
    let mut pairs: Vec<(NodeId, NodeId)> = nodes.iter().map(|&v| (v, (v + 1) % n)).collect();
    pairs.extend(nodes.iter().map(|&v| (v, (v + n / 2) % n)));
    assert_eq!(
        client.jaccard(2.0, &pairs).expect("jaccard"),
        local.jaccard_batch(&pairs, 2.0)
    );
    // Sketch prefixes must be the exact (rank, node) insertion sequence
    // the local view streams.
    let d = 2.0;
    let served = client.sketch_prefixes(d, &nodes).expect("sketch prefixes");
    for (&v, seq) in nodes.iter().zip(&served) {
        let mut want: Vec<(f64, NodeId)> = Vec::new();
        frozen.for_each_entry(v, |e| {
            if e.dist <= d {
                want.push((e.rank, e.node));
            }
        });
        assert_eq!(seq, &want, "sketch prefix of node {v}");
    }
}

/// What the flaky proxy does with new connections.
pub const HEALTHY: u8 = 0;
/// Close immediately, before the handshake.
pub const REFUSE: u8 = 1;
/// Answer the handshake with a reject status.
pub const REJECT_HANDSHAKE: u8 = 2;
/// Accept the handshake, then answer with an insane length prefix.
pub const GARBAGE: u8 = 3;
/// Accept the handshake, then answer a truncated frame and close.
pub const TRUNCATE: u8 = 4;
/// Accept the handshake, swallow requests, never answer.
pub const STALL: u8 = 5;
/// Accept the TCP connection, then never read or write a byte — the
/// connection looks alive but the handshake reply never comes.
pub const BLACKHOLE: u8 = 6;

/// A TCP proxy in front of a real backend whose failure mode can be
/// switched at runtime. Switching also severs standing connections —
/// mid-frame, if a frame is in flight — so the router notices
/// immediately; this is how "the backend died and came back" is
/// simulated on one stable address without racing TIME_WAIT.
pub struct FlakyProxy {
    pub addr: SocketAddr,
    mode: Arc<AtomicU8>,
    stop: Arc<AtomicBool>,
    live: Arc<Mutex<Vec<TcpStream>>>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl FlakyProxy {
    pub fn spawn(upstream: SocketAddr) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        let addr = listener.local_addr().expect("proxy addr");
        let mode = Arc::new(AtomicU8::new(HEALTHY));
        let stop = Arc::new(AtomicBool::new(false));
        let live: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let join = {
            let (mode, stop, live) = (Arc::clone(&mode), Arc::clone(&stop), Arc::clone(&live));
            std::thread::spawn(move || proxy_loop(listener, upstream, &mode, &stop, &live))
        };
        Self {
            addr,
            mode,
            stop,
            live,
            join: Some(join),
        }
    }

    pub fn set_mode(&self, mode: u8) {
        self.mode.store(mode, Ordering::SeqCst);
        for conn in self.live.lock().expect("live list").drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Drop for FlakyProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.set_mode(REFUSE);
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn handshake_accept(conn: &mut TcpStream) -> bool {
    let mut hello = [0u8; 12];
    if conn.read_exact(&mut hello).is_err() {
        return false;
    }
    let mut accept = [1u8; 5];
    accept[1..5].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    conn.write_all(&accept).is_ok()
}

fn proxy_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    mode: &AtomicU8,
    stop: &AtomicBool,
    live: &Mutex<Vec<TcpStream>>,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut client) = conn else { continue };
        if let Ok(clone) = client.try_clone() {
            live.lock().expect("live list").push(clone);
        }
        match mode.load(Ordering::SeqCst) {
            HEALTHY => {
                let Ok(up) = TcpStream::connect(upstream) else {
                    let _ = client.shutdown(std::net::Shutdown::Both);
                    continue;
                };
                if let Ok(clone) = up.try_clone() {
                    live.lock().expect("live list").push(clone);
                }
                let (Ok(mut c2), Ok(mut u2)) = (client.try_clone(), up.try_clone()) else {
                    continue;
                };
                std::thread::spawn(move || {
                    let mut client = client;
                    let mut up = up;
                    let _ = std::io::copy(&mut client, &mut up);
                    let _ = up.shutdown(std::net::Shutdown::Both);
                });
                std::thread::spawn(move || {
                    let _ = std::io::copy(&mut u2, &mut c2);
                    let _ = c2.shutdown(std::net::Shutdown::Both);
                });
            }
            REFUSE => {
                // A plain drop would leave the socket half-open through
                // the clone in `live`; sever it for real.
                let _ = client.shutdown(std::net::Shutdown::Both);
            }
            BLACKHOLE => {
                // Deliberately half-open: the clone in `live` keeps the
                // socket established, and nobody ever answers the
                // handshake. The router's handshake deadline must fire.
                drop(client);
            }
            REJECT_HANDSHAKE => {
                let mut hello = [0u8; 12];
                let _ = client.read_exact(&mut hello);
                let mut reject = [0u8; 5];
                reject[1..5].copy_from_slice(&WIRE_VERSION.to_le_bytes());
                let _ = client.write_all(&reject);
            }
            GARBAGE => {
                if handshake_accept(&mut client) {
                    let mut buf = [0u8; 4096];
                    let _ = client.read(&mut buf);
                    // A length prefix far beyond MAX_FRAME_LEN.
                    let _ = client.write_all(&u32::MAX.to_le_bytes());
                }
            }
            TRUNCATE => {
                if handshake_accept(&mut client) {
                    let mut buf = [0u8; 4096];
                    let _ = client.read(&mut buf);
                    // Declare a 100-byte frame, deliver 10, hang up.
                    let _ = client.write_all(&100u32.to_le_bytes());
                    let _ = client.write_all(&[0u8; 10]);
                }
            }
            _ => {
                if handshake_accept(&mut client) {
                    let mut buf = [0u8; 4096];
                    while !stop.load(Ordering::SeqCst) {
                        match client.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                    }
                }
            }
        }
    }
}
