//! The serving tier's end-to-end guarantee: every answer returned over
//! the wire is **bitwise identical** to the local [`QueryEngine`] on the
//! unsharded frozen store — across shard counts {1, 2, 4}, server worker
//! counts, pipelined and sequential clients, and every request type of
//! the protocol.

use std::net::SocketAddr;
use std::sync::Arc;

use proptest::prelude::*;

use adsketch::core::centrality::DecayKernel;
use adsketch::core::{
    freeze_sharded, freeze_sharded_format, AdsSet, FrozenAdsSet, QueryEngine, StoreFormat,
};
use adsketch::graph::{generators, Graph, NodeId};
use adsketch::serve::{Client, Request, Response, ServeError, Server, ShardedStore};

/// Freezes `ads` into `shards` files in a scratch dir, loads the store,
/// and runs a bound server with `workers` threads. Returns the client
/// address plus a guard that shuts the server down and wipes the dir.
fn spawn_server(ads: &AdsSet, shards: usize, workers: usize, tag: &str) -> ServerGuard {
    let dir = std::env::temp_dir().join(format!("adsketch_test_serve_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    freeze_sharded(ads, shards, &dir).expect("freeze_sharded");
    let store = Arc::new(ShardedStore::load(&dir).expect("load sharded store"));
    let server = Server::bind("127.0.0.1:0", store, workers).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    ServerGuard {
        addr,
        handle: Some(handle),
        join: Some(join),
        dir,
    }
}

struct ServerGuard {
    addr: SocketAddr,
    handle: Option<adsketch::serve::ServerHandle>,
    join: Option<std::thread::JoinHandle<std::io::Result<u64>>>,
    dir: std::path::PathBuf,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            h.shutdown();
        }
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Fires every request type at the server and asserts each response is
/// bitwise equal to the local engine on the unsharded store.
fn assert_served_equals_local(client: &mut Client, ads: &AdsSet, frozen: &FrozenAdsSet) {
    let local = QueryEngine::new(frozen);
    let n = ads.num_nodes() as NodeId;
    let nodes: Vec<NodeId> = (0..n).collect();
    let rev: Vec<NodeId> = (0..n).rev().collect();

    assert_eq!(
        client.harmonic(&nodes).expect("harmonic"),
        local.harmonic_batch(&nodes)
    );
    // A shuffled batch must come back in request order, not node order.
    assert_eq!(
        client.harmonic(&rev).expect("harmonic rev"),
        local.harmonic_batch(&rev)
    );
    for kernel in [
        DecayKernel::Harmonic,
        DecayKernel::Constant,
        DecayKernel::Threshold(2.0),
        DecayKernel::Exponential { base: 2.0 },
    ] {
        assert_eq!(
            client.decay(kernel, &nodes).expect("decay"),
            local.decay_batch(kernel, &nodes),
            "kernel {kernel:?}"
        );
    }
    let queries: Vec<(NodeId, f64)> = nodes
        .iter()
        .map(|&v| (v, (v % 5) as f64))
        .chain([(0, f64::INFINITY), (n - 1, 0.0)])
        .collect();
    assert_eq!(
        client.cardinality(&queries).expect("cardinality"),
        local.cardinality_batch(&queries)
    );
    assert_eq!(
        client.neighborhood_function(&nodes).expect("nf"),
        local.neighborhood_function_batch(&nodes)
    );
    let pairs: Vec<(NodeId, NodeId)> = nodes.iter().map(|&v| (v, (v + 1) % n)).collect();
    assert_eq!(
        client.jaccard(2.0, &pairs).expect("jaccard"),
        local.jaccard_batch(&pairs, 2.0)
    );
}

#[test]
fn served_answers_bitwise_identical_across_shards_and_workers() {
    let g = generators::gnp_directed(80, 0.06, 17);
    let ads = AdsSet::build(&g, 4, 9);
    let frozen = ads.freeze();
    for shards in [1usize, 2, 4] {
        for workers in [1usize, 2, 4] {
            let guard = spawn_server(&ads, shards, workers, &format!("eq_{shards}_{workers}"));
            let mut client = Client::connect(guard.addr).expect("connect");
            assert_served_equals_local(&mut client, &ads, &frozen);
        }
    }
}

#[test]
fn served_answers_on_v2_shards_bitwise_identical_to_local_v1_engine() {
    // The wire-path leg of the cross-format identity gate: shards frozen
    // in the compressed v2 format must serve every request type bitwise
    // identical to the local engine on the unsharded full-width store.
    let g = generators::gnp_directed(90, 0.06, 17);
    let ads = AdsSet::build(&g, 4, 9);
    let frozen = ads.freeze();
    for shards in [1usize, 3] {
        let dir = std::env::temp_dir().join(format!("adsketch_test_serve_v2_{shards}"));
        let _ = std::fs::remove_dir_all(&dir);
        freeze_sharded_format(&ads, shards, &dir, StoreFormat::V2).expect("freeze v2");
        let store = Arc::new(ShardedStore::load(&dir).expect("load v2 sharded store"));
        let server = Server::bind("127.0.0.1:0", store, 2).expect("bind");
        let addr = server.local_addr().expect("addr");
        let guard = ServerGuard {
            addr,
            handle: Some(server.handle()),
            join: Some(std::thread::spawn(move || server.run())),
            dir,
        };
        let mut client = Client::connect(guard.addr).expect("connect");
        assert_served_equals_local(&mut client, &ads, &frozen);
    }
}

#[test]
fn weighted_and_disconnected_graphs_serve_identically() {
    let weighted = generators::random_weighted_digraph(60, 3, 0.5, 2.5, 7);
    let mut arcs = generators::gnp(30, 0.12, 5)
        .all_arcs()
        .map(|(u, v, _)| (u, v))
        .collect::<Vec<_>>();
    arcs.extend(
        generators::gnp(30, 0.12, 6)
            .all_arcs()
            .map(|(u, v, _)| (u + 30, v + 30)),
    );
    let disconnected = Graph::directed(70, &arcs).unwrap(); // nodes 60..70 isolated
    for (name, g) in [("weighted", &weighted), ("disconnected", &disconnected)] {
        let ads = AdsSet::build(g, 3, 2);
        let frozen = ads.freeze();
        let guard = spawn_server(&ads, 2, 2, &format!("kinds_{name}"));
        let mut client = Client::connect(guard.addr).expect("connect");
        assert_served_equals_local(&mut client, &ads, &frozen);
    }
}

#[test]
fn pipelined_and_concurrent_clients_get_ordered_identical_answers() {
    let g = generators::barabasi_albert(120, 3, 4);
    let ads = AdsSet::build(&g, 4, 6);
    let frozen = ads.freeze();
    let local = QueryEngine::new(&frozen);
    let guard = spawn_server(&ads, 4, 3, "pipeline");

    // Deep pipeline on one connection: responses must align with request
    // order.
    let reqs: Vec<Request> = (0..40u32)
        .map(|i| Request::Harmonic {
            nodes: vec![i, (i + 7) % 120, (i * 3) % 120],
        })
        .collect();
    let mut client = Client::connect(guard.addr).expect("connect");
    let responses = client.pipeline(&reqs).expect("pipeline");
    for (req, resp) in reqs.iter().zip(&responses) {
        let Request::Harmonic { nodes } = req else {
            unreachable!()
        };
        assert_eq!(resp, &Response::Floats(local.harmonic_batch(nodes)));
    }

    // Many concurrent connections served by a smaller worker pool.
    std::thread::scope(|s| {
        for c in 0..6u32 {
            let addr = guard.addr;
            let local = &local;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let nodes: Vec<NodeId> = (0..120).filter(|v| v % (c + 2) == 0).collect();
                for _ in 0..10 {
                    assert_eq!(
                        client.harmonic(&nodes).expect("harmonic"),
                        local.harmonic_batch(&nodes)
                    );
                }
            });
        }
    });
}

#[test]
fn out_of_range_nodes_get_error_frames_and_keep_the_connection() {
    let g = generators::gnp(30, 0.1, 3);
    let ads = AdsSet::build(&g, 2, 1);
    let frozen = ads.freeze();
    let guard = spawn_server(&ads, 2, 1, "errors");
    let mut client = Client::connect(guard.addr).expect("connect");
    let err = client.harmonic(&[0, 29, 30]).unwrap_err();
    match err {
        ServeError::Remote { code, message } => {
            assert_eq!(code, adsketch::serve::proto::ERR_NODE_RANGE);
            assert!(message.contains("30"), "{message}");
        }
        other => panic!("expected a Remote error, got {other}"),
    }
    let err = client.jaccard(1.0, &[(0, 99)]).unwrap_err();
    assert!(matches!(err, ServeError::Remote { .. }));
    // The connection survives error frames.
    assert_eq!(
        client.harmonic(&[0, 1]).expect("still usable"),
        QueryEngine::new(&frozen).harmonic_batch(&[0, 1])
    );
}

#[test]
fn graceful_shutdown_returns_and_refuses_new_work() {
    let g = generators::gnp(20, 0.2, 8);
    let ads = AdsSet::build(&g, 2, 3);
    let dir = std::env::temp_dir().join("adsketch_test_serve_shutdown");
    let _ = std::fs::remove_dir_all(&dir);
    freeze_sharded(&ads, 2, &dir).expect("freeze_sharded");
    let store = Arc::new(ShardedStore::load(&dir).expect("load"));
    let server = Server::bind("127.0.0.1:0", store, 2).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    assert_eq!(handle.addr(), addr);
    let join = std::thread::spawn(move || server.run());

    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(client.harmonic(&[0]).expect("pre-shutdown").len(), 1);
    drop(client);

    handle.shutdown();
    let served = join.join().expect("join").expect("run");
    assert!(served >= 1, "at least our connection was served");
    std::fs::remove_dir_all(&dir).ok();
}

/// Shutdown ordering: a request whose frame is only partially on the
/// wire when shutdown fires must still be drained and answered — the
/// server may only stop at a clean frame boundary, never mid-frame.
#[test]
fn shutdown_drains_a_request_caught_mid_frame() {
    use std::io::{Read, Write};

    use adsketch::serve::proto::{WIRE_MAGIC, WIRE_VERSION};

    let g = generators::gnp(20, 0.2, 11);
    let ads = AdsSet::build(&g, 2, 5);
    let frozen = ads.freeze();
    let guard = spawn_server(&ads, 1, 1, "drain");

    // Raw socket so we control exactly how many bytes are on the wire.
    let mut stream = std::net::TcpStream::connect(guard.addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream.write_all(&WIRE_MAGIC).expect("magic");
    stream
        .write_all(&WIRE_VERSION.to_le_bytes())
        .expect("version");
    let mut reply = [0u8; 5];
    stream.read_exact(&mut reply).expect("handshake reply");
    assert_eq!(reply[0], 1, "handshake accepted");

    let body = Request::Harmonic {
        nodes: vec![0, 1, 2],
    }
    .encode();
    let len = (body.len() as u32).to_le_bytes();
    // Two bytes of the length prefix, then shutdown fires mid-frame.
    stream.write_all(&len[..2]).expect("half prefix");
    let handle = guard.handle.as_ref().expect("handle");
    std::thread::sleep(std::time::Duration::from_millis(60));
    handle.shutdown();
    std::thread::sleep(std::time::Duration::from_millis(150));
    // Finish the frame well after the stop flag was raised.
    stream.write_all(&len[2..]).expect("rest of prefix");
    stream.write_all(&body).expect("body");

    // The committed request still gets its full answer.
    let mut resp_len = [0u8; 4];
    stream.read_exact(&mut resp_len).expect("response arrives");
    let mut resp_body = vec![0u8; u32::from_le_bytes(resp_len) as usize];
    stream.read_exact(&mut resp_body).expect("response body");
    match Response::decode(&resp_body).expect("decodes") {
        Response::Floats(vals) => {
            assert_eq!(vals, QueryEngine::new(&frozen).harmonic_batch(&[0, 1, 2]));
        }
        other => panic!("expected Floats, got {other:?}"),
    }
    // ... and then the server closes cleanly at the frame boundary.
    let n = stream.read(&mut resp_len).expect("clean close");
    assert_eq!(n, 0, "server must close, not answer past shutdown");
}

proptest! {
    /// Random tiny graph, random shard count: a served mixed batch is
    /// bitwise identical to the local engine.
    #[test]
    fn random_graphs_serve_bitwise_identically(
        n in 2usize..24,
        seed in 0u64..500,
        k in 1usize..5,
        shards in 1usize..5,
    ) {
        let g = generators::gnp_directed(n, 0.15, seed);
        let ads = AdsSet::build(&g, k, seed);
        let frozen = ads.freeze();
        let local = QueryEngine::new(&frozen);
        let guard = spawn_server(&ads, shards, 2, "prop");
        let mut client = Client::connect(guard.addr).expect("connect");
        let nodes: Vec<NodeId> = (0..n as NodeId).collect();
        prop_assert_eq!(
            client.harmonic(&nodes).expect("harmonic"),
            local.harmonic_batch(&nodes)
        );
        let queries: Vec<(NodeId, f64)> =
            nodes.iter().map(|&v| (v, (seed % 4) as f64)).collect();
        prop_assert_eq!(
            client.cardinality(&queries).expect("cardinality"),
            local.cardinality_batch(&queries)
        );
    }
}
