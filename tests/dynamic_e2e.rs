//! Dynamic-graph end-to-end gates: edges stream through the ingest tier
//! ([`adsketch::ingest`]), the freezer publishes numbered generations,
//! and a live server is hot-swapped between them **mid-traffic**. The
//! invariant under test is the tentpole one: incrementally maintained
//! sketches answer **bitwise identically** to a from-scratch rebuild of
//! the same edge prefix — for every estimator of the protocol, before
//! and after each swap, with no client-visible disruption.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use adsketch::core::{AdsSet, QueryEngine, StoreFormat};
use adsketch::graph::{generators, Graph, NodeId};
use adsketch::ingest::{current_generation, Freezer, Ingestor};
use adsketch::serve::{Client, GenerationStore, Request, Response, Server, ShardedStore};

use common::{assert_routed_equals_local, fast_path_config, spawn_router_with_stats, Scratch};

/// One rank seed everywhere: the ingestor's incremental sketches and the
/// from-scratch oracles must hash identically for bitwise comparison.
const SEED: u64 = 21;

/// A deterministic weighted edge stream (CSR order of a fixed graph).
fn edge_stream(n: usize) -> Vec<(NodeId, NodeId, f64)> {
    let g = generators::random_weighted_digraph(n, 4, 0.5, 2.5, 11);
    let mut edges = Vec::with_capacity(g.num_arcs());
    for u in 0..n as NodeId {
        for (v, w) in g.arcs(u) {
            edges.push((u, v, w));
        }
    }
    edges
}

/// The from-scratch oracle for an edge prefix: what a cold batch build
/// of exactly those edges answers.
fn oracle(n: usize, k: usize, prefix: &[(NodeId, NodeId, f64)]) -> AdsSet {
    let g = Graph::directed_weighted(n, prefix).expect("prefix graph");
    AdsSet::build(&g, k, SEED)
}

fn ingest(ingestor: &Mutex<Ingestor>, edges: &[(NodeId, NodeId, f64)]) {
    let mut ing = ingestor.lock().expect("ingestor lock");
    for &(u, v, w) in edges {
        ing.ingest(u, v, w).expect("ingest edge");
    }
    ing.flush().expect("flush edge log");
}

/// The tentpole gate end to end: stream edges in three tranches, freeze
/// each into a generation, hot-swap a live server twice while a
/// background client hammers it, and after every swap run the full
/// request battery (harmonic, decay kernels, cardinality, neighborhood
/// function, jaccard, sketch prefixes) against the from-scratch oracle
/// of that generation's edge prefix — all bitwise.
#[test]
fn hot_swapped_generations_answer_bitwise_like_fresh_builds() {
    let (n, k) = (100usize, 6usize);
    let edges = edge_stream(n);
    let m = edges.len();
    let cuts = [m / 3, 2 * m / 3, m];
    let scratch = Scratch::new("dyn_swap");
    let ingestor = Arc::new(Mutex::new(
        Ingestor::open(scratch.0.join("log"), n, k, SEED, 1 << 14).expect("open ingestor"),
    ));
    let mut freezer = Freezer::new(scratch.0.join("store"), 2, StoreFormat::V2).expect("freezer");

    ingest(&ingestor, &edges[..cuts[0]]);
    let gen1 = freezer.freeze(ingestor.as_ref()).expect("freeze gen 1");
    let store = Arc::new(GenerationStore::new(
        ShardedStore::load(&gen1.dir).expect("load gen 1"),
        gen1.generation,
    ));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&store), 2).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    // Background traffic across both swaps: any error fails the test.
    let stop = Arc::new(AtomicBool::new(false));
    let load = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("load client");
            let nodes: Vec<NodeId> = (0..n as NodeId).collect();
            let mut frames = 0u64;
            while !stop.load(Ordering::SeqCst) {
                client.harmonic(&nodes).expect("load harmonic");
                frames += 1;
            }
            frames
        })
    };

    let mut client = Client::connect(addr).expect("connect");
    for (i, &cut) in cuts.iter().enumerate() {
        let generation = (i + 1) as u64;
        if i > 0 {
            ingest(&ingestor, &edges[cuts[i - 1]..cut]);
            let frozen = freezer.freeze(ingestor.as_ref()).expect("freeze");
            assert_eq!(frozen.generation, generation);
            let next = ShardedStore::load(&frozen.dir).expect("load generation");
            assert_eq!(store.swap(next, generation), generation - 1);
        }
        assert_eq!(client.gen_info().expect("gen info"), generation);
        let ads = oracle(n, k, &edges[..cut]);
        assert_routed_equals_local(&mut client, &ads, &ads.freeze());
    }

    // The live incremental state itself equals the full-graph oracle.
    assert_eq!(
        ingestor.lock().expect("ingestor lock").snapshot(),
        oracle(n, k, &edges)
    );

    stop.store(true, Ordering::SeqCst);
    assert!(load.join().expect("load thread") > 0, "no load ran");
    handle.shutdown();
    join.join().expect("server thread").expect("server run");
}

/// A swap landing inside an in-flight pipelined batch: every frame must
/// be answered entirely by one generation (the per-frame pin), the
/// generation sequence observed on one connection must be monotone, and
/// after the batch the connection serves the new generation.
#[test]
fn swap_during_pipelined_batch_keeps_frames_single_generation() {
    let (n, k) = (80usize, 5usize);
    let edges = edge_stream(n);
    let cut = edges.len() / 2;
    let scratch = Scratch::new("dyn_pipeline");
    let ingestor = Arc::new(Mutex::new(
        Ingestor::open(scratch.0.join("log"), n, k, SEED, 1 << 14).expect("open ingestor"),
    ));
    let mut freezer = Freezer::new(scratch.0.join("store"), 1, StoreFormat::V1).expect("freezer");

    ingest(&ingestor, &edges[..cut]);
    let gen1 = freezer.freeze(ingestor.as_ref()).expect("freeze gen 1");
    ingest(&ingestor, &edges[cut..]);
    let gen2 = freezer.freeze(ingestor.as_ref()).expect("freeze gen 2");

    let store = Arc::new(GenerationStore::new(
        ShardedStore::load(&gen1.dir).expect("load gen 1"),
        1,
    ));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&store), 2).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let nodes: Vec<NodeId> = (0..n as NodeId).collect();
    let by_gen = [
        QueryEngine::new(&oracle(n, k, &edges[..cut]).freeze()).harmonic_batch(&nodes),
        QueryEngine::new(&oracle(n, k, &edges).freeze()).harmonic_batch(&nodes),
    ];

    // GenInfo frames bracket every harmonic frame, all in one pipelined
    // batch, while another thread swaps generations mid-flight.
    let frames = 200usize;
    let mut reqs = vec![Request::GenInfo];
    for _ in 0..frames {
        reqs.push(Request::Harmonic {
            nodes: nodes.clone(),
        });
        reqs.push(Request::GenInfo);
    }
    let swapper = {
        let store = Arc::clone(&store);
        let dir = gen2.dir.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            let next = ShardedStore::load(&dir).expect("load gen 2");
            assert_eq!(store.swap(next, 2), 1);
        })
    };
    let mut client = Client::connect(addr).expect("connect");
    let resps = client.pipeline(&reqs).expect("pipelined batch");
    swapper.join().expect("swapper thread");

    let gen_of = |resp: &Response| match resp {
        Response::GenInfo { generation } => *generation,
        other => panic!("expected GenInfo, got {other:?}"),
    };
    let mut last = gen_of(&resps[0]);
    for f in 0..frames {
        let g_before = gen_of(&resps[2 * f]);
        let g_after = gen_of(&resps[2 * f + 2]);
        assert!(g_before <= g_after, "generation regressed mid-pipeline");
        assert!(last <= g_before);
        last = g_after;
        let Response::Floats(got) = &resps[2 * f + 1] else {
            panic!("expected Floats, got {:?}", resps[2 * f + 1]);
        };
        // The whole frame must match ONE generation in its bracket —
        // a half-old, half-new answer fails both candidates.
        assert!(
            (g_before..=g_after).any(|g| got == &by_gen[g as usize - 1]),
            "frame {f} matches no single generation in {g_before}..={g_after}"
        );
    }
    // The swap happened and the connection now serves generation 2.
    assert_eq!(client.gen_info().expect("gen info"), 2);
    assert_eq!(client.harmonic(&nodes).expect("harmonic"), by_gen[1]);

    handle.shutdown();
    join.join().expect("server thread").expect("server run");
}

/// A router with its answer cache enabled in front of a hot-swapping
/// backend: once the router's serving generation advances, cached
/// old-generation bits must never be replayed (the generation is part of
/// the cache key).
#[test]
fn router_answer_cache_never_replays_old_generation_bits() {
    let (n, k) = (80usize, 5usize);
    let edges = edge_stream(n);
    let cut = edges.len() / 2;
    let scratch = Scratch::new("dyn_cache");
    let ingestor = Arc::new(Mutex::new(
        Ingestor::open(scratch.0.join("log"), n, k, SEED, 1 << 14).expect("open ingestor"),
    ));
    let mut freezer = Freezer::new(scratch.0.join("store"), 1, StoreFormat::V1).expect("freezer");

    ingest(&ingestor, &edges[..cut]);
    let gen1 = freezer.freeze(ingestor.as_ref()).expect("freeze gen 1");
    ingest(&ingestor, &edges[cut..]);
    let gen2 = freezer.freeze(ingestor.as_ref()).expect("freeze gen 2");

    let e1 = QueryEngine::new(&ShardedStore::load(&gen1.dir).expect("load 1")).harmonic_all();
    let e2 = QueryEngine::new(&ShardedStore::load(&gen2.dir).expect("load 2")).harmonic_all();
    assert_ne!(e1, e2, "the two generations must answer differently");

    // One hot-swappable backend behind a cache-enabled router. The
    // router's prober polls GenInfo and advances its serving generation.
    let store = Arc::new(GenerationStore::new(
        ShardedStore::load(&gen1.dir).expect("load gen 1"),
        1,
    ));
    let backend = Server::bind("127.0.0.1:0", Arc::clone(&store), 2).expect("bind backend");
    let backend_addr = backend.local_addr().expect("backend addr");
    let backend_handle = backend.handle();
    let backend_join = std::thread::spawn(move || backend.run());
    let (addr, router_handle, router_join, stats) =
        spawn_router_with_stats(&gen1.dir, vec![vec![backend_addr]], 2, fast_path_config());
    let stats = stats.expect("cache enabled");

    let mut client = Client::connect(addr).expect("connect");
    let nodes: Vec<NodeId> = (0..n as NodeId).collect();
    assert_eq!(client.harmonic(&nodes).expect("cold"), e1);
    assert_eq!(client.harmonic(&nodes).expect("warm"), e1);
    assert!(stats.hits() > 0, "the warm repeat must hit the cache");

    let next = ShardedStore::load(&gen2.dir).expect("load gen 2");
    assert_eq!(store.swap(next, 2), 1);
    // Wait for the prober to observe generation 2 (the router answers
    // GenInfo locally from its serving generation).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if client.gen_info().expect("router gen info") == 2 {
            break;
        }
        assert!(Instant::now() < deadline, "router never observed the swap");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Same query, new generation: the cached generation-1 bits must NOT
    // come back — the answer is generation 2's, bit for bit.
    assert_eq!(client.harmonic(&nodes).expect("post-swap"), e2);
    assert_eq!(client.harmonic(&nodes).expect("post-swap warm"), e2);

    router_handle.shutdown();
    router_join
        .join()
        .expect("router thread")
        .expect("router run");
    backend_handle.shutdown();
    backend_join
        .join()
        .expect("backend thread")
        .expect("backend run");
}

/// A crash after freezing generation 1 but before freezing the edges
/// ingested since (plus a torn partial directory for the never-published
/// generation 2): reopening replays the journal and the next freeze
/// publishes exactly the from-scratch state of the full stream.
#[test]
fn freezer_crash_recovery_replays_the_edge_log() {
    let (n, k) = (90usize, 5usize);
    let edges = edge_stream(n);
    let cut = edges.len() / 2;
    let scratch = Scratch::new("dyn_crash");
    let log_dir = scratch.0.join("log");
    let store_root = scratch.0.join("store");

    {
        let ingestor =
            Mutex::new(Ingestor::open(&log_dir, n, k, SEED, 1 << 14).expect("open ingestor"));
        let mut freezer = Freezer::new(&store_root, 2, StoreFormat::V2).expect("freezer");
        ingest(&ingestor, &edges[..cut]);
        freezer.freeze(&ingestor).expect("freeze gen 1");
        ingest(&ingestor, &edges[cut..]);
        // Crash: everything is journaled, nothing else is frozen.
    }
    // A partial generation-2 directory the dying freezer left behind.
    let partial = store_root.join("gen-0002");
    std::fs::create_dir_all(&partial).expect("partial dir");
    std::fs::write(partial.join("shard-00000.ads"), b"torn").expect("partial shard");

    let ingestor = Mutex::new(Ingestor::open(&log_dir, n, k, SEED, 1 << 14).expect("reopen"));
    let mut freezer = Freezer::new(&store_root, 2, StoreFormat::V2).expect("freezer resumes");
    let frozen = freezer.freeze(&ingestor).expect("freeze gen 2");
    assert_eq!(frozen.generation, 2, "numbering resumes after CURRENT");
    assert_eq!(frozen.edges, edges.len() as u64);

    let (current, dir) = current_generation(&store_root)
        .expect("read CURRENT")
        .expect("published");
    assert_eq!((current, dir.as_path()), (2, frozen.dir.as_path()));
    // The recovered generation answers exactly like a cold rebuild.
    let full = oracle(n, k, &edges);
    assert_eq!(ingestor.lock().expect("lock").snapshot(), full);
    assert_eq!(
        QueryEngine::new(&ShardedStore::load(&dir).expect("load")).harmonic_all(),
        QueryEngine::new(&full.freeze()).harmonic_all()
    );
}
