//! Workspace-wiring smoke test: one type from each of the six library
//! crates, reached exclusively through the `adsketch` facade re-exports.
//! Guards the crate graph itself — if a re-export or inter-crate
//! dependency breaks, this fails before any algorithmic test runs.

use adsketch::core::AdsSet;
use adsketch::graph::{generators, Graph};
use adsketch::minhash::BottomKSketch;
use adsketch::serve::proto::Request;
use adsketch::stream::HyperLogLog;
use adsketch::util::RankHasher;

#[test]
fn facade_reaches_every_crate() {
    // util: coordinated rank hashing underlies everything downstream.
    let hasher = RankHasher::new(7);
    let r = hasher.rank(42);
    assert!((0.0..1.0).contains(&r));

    // graph: build a small scale-free digraph via the generators.
    let g = generators::barabasi_albert(200, 3, 11);
    assert_eq!(g.num_nodes(), 200);

    // core: an ADS per node, then a HIP cardinality query on node 0.
    let ads = AdsSet::build(&g, 8, 7);
    let hip = ads.hip(0);
    let within2 = hip.cardinality_at(2.0);
    assert!(within2 >= 1.0, "node 0 reaches at least itself: {within2}");

    // minhash: a bottom-k sketch over an explicit element set.
    let mut sketch = BottomKSketch::new(8);
    for e in 0..1_000u64 {
        sketch.insert(&hasher, e);
    }

    // stream: a HyperLogLog over the same stream, sanity-checked loosely.
    let mut hll = HyperLogLog::new(64);
    for e in 0..1_000u64 {
        hll.insert(&hasher, e);
    }
    let est = hll.estimate();
    assert!(
        (500.0..2_000.0).contains(&est),
        "HLL estimate of 1000 distinct elements way off: {est}"
    );

    // serve: the wire codec round-trips through the facade (the full
    // network lifecycle is covered by tests/serve_equivalence.rs).
    let req = Request::Harmonic {
        nodes: vec![0, 1, 2],
    };
    assert_eq!(Request::decode(&req.encode()).unwrap(), req);

    // And the explicit-arc Graph constructor round-trips through the facade.
    let path = Graph::directed(3, &[(0, 1), (1, 2)]).unwrap();
    let path_ads = AdsSet::build(&path, 4, 1);
    let reach = path_ads.hip(0).reachable_estimate();
    assert!(
        (reach - 3.0).abs() < 1e-9,
        "n ≤ k makes HIP exact; got {reach}"
    );
}
