//! Replica-aware routing: the router must survive the death of any
//! minority of a shard's replica set with **zero client-visible
//! errors** and bitwise-identical answers — across fleet shapes, worker
//! counts, kills mid-pipeline, hedged reads, and (opt-in) graceful
//! degradation when a whole replica set is down.

mod common;

use std::time::{Duration, Instant};

use proptest::prelude::*;

use adsketch::core::{freeze_sharded, AdsSet, QueryEngine};
use adsketch::graph::{generators, NodeId};
use adsketch::serve::proto::ERR_SHARD_DOWN;
use adsketch::serve::{Client, Request, RouterConfig, ServeError};

use common::{
    assert_routed_equals_local, dead_port, fast_config, spawn_backend, spawn_router, FlakyProxy,
    ReplicaFleet, Scratch, STALL, TRUNCATE,
};

#[test]
fn replicated_fleets_answer_bitwise_identically() {
    let g = generators::gnp_directed(80, 0.06, 21);
    let ads = AdsSet::build(&g, 4, 11);
    let frozen = ads.freeze();
    for (shards, replicas) in [(1usize, 3usize), (4, 2)] {
        for workers in [1usize, 2] {
            let guard = ReplicaFleet::spawn(
                &ads,
                shards,
                replicas,
                workers,
                &format!("rep_eq_{shards}x{replicas}_{workers}"),
                RouterConfig::default(),
            );
            let mut client = Client::connect(guard.addr).expect("connect");
            assert_routed_equals_local(&mut client, &ads, &frozen);
        }
    }
}

#[test]
fn killing_each_replica_in_turn_is_invisible_to_clients() {
    let g = generators::gnp_directed(60, 0.08, 5);
    let ads = AdsSet::build(&g, 3, 7);
    let frozen = ads.freeze();
    let local = QueryEngine::new(&frozen);
    let nodes: Vec<NodeId> = (0..60).collect();
    let pairs: Vec<(NodeId, NodeId)> = nodes.iter().map(|&v| (v, (v + 30) % 60)).collect();
    let harmonic = local.harmonic_batch(&nodes);
    let jaccard = local.jaccard_batch(&pairs, 2.0);

    // Replica death must never open a window of client errors, so the
    // failure threshold is set out of reach: cooling replicas stay
    // dialable as fallback and the dead one is simply failed over.
    let mut config = fast_config();
    config.failure_threshold = 100_000;
    for (shards, replicas) in [(1usize, 3usize), (2, 2)] {
        let mut guard = ReplicaFleet::spawn(
            &ads,
            shards,
            replicas,
            2,
            &format!("rep_kill_{shards}x{replicas}"),
            config.clone(),
        );
        let mut client = Client::connect(guard.addr).expect("connect");
        assert_eq!(client.harmonic(&nodes).expect("healthy"), harmonic);
        for shard in 0..shards {
            for rep in 0..replicas {
                // Kill one replica — its standing router connections die
                // and its port refuses — then query through the hole.
                guard.kill(shard, rep);
                for _ in 0..3 {
                    assert_eq!(
                        client
                            .harmonic(&nodes)
                            .expect("harmonic with a dead replica"),
                        harmonic,
                        "shard {shard} rep {rep} down"
                    );
                }
                assert_eq!(
                    client
                        .jaccard(2.0, &pairs)
                        .expect("jaccard with a dead replica"),
                    jaccard,
                    "shard {shard} rep {rep} down"
                );
                guard.restart(shard, rep);
                // The restarted replica rejoins transparently; the next
                // answers stay bitwise identical whether or not the
                // router has re-adopted it yet.
                assert_eq!(client.harmonic(&nodes).expect("after restart"), harmonic);
            }
        }
    }
}

#[test]
fn mid_pipeline_replica_loss_never_breaks_response_pairing() {
    let g = generators::barabasi_albert(80, 3, 9);
    let ads = AdsSet::build(&g, 3, 3);
    let frozen = ads.freeze();
    let local = QueryEngine::new(&frozen);
    let scratch = Scratch::new("rep_midpipe");
    freeze_sharded(&ads, 2, &scratch.0).expect("freeze_sharded");

    // Shard 0's first replica sits behind the flaky proxy; its second
    // replica and shard 1 are direct backends.
    let (b0a_addr, b0a_handle, b0a_join) = spawn_backend(&scratch.0, 0);
    let (b0b_addr, b0b_handle, b0b_join) = spawn_backend(&scratch.0, 0);
    let (b1_addr, b1_handle, b1_join) = spawn_backend(&scratch.0, 1);
    let proxy = FlakyProxy::spawn(b0a_addr);
    let mut config = fast_config();
    config.retries = 2;
    let (addr, r_handle, r_join) = spawn_router(
        &scratch.0,
        vec![vec![proxy.addr, b0b_addr], vec![b1_addr]],
        2,
        config,
    );

    let reqs: Vec<Request> = (0..40u32)
        .map(|i| Request::Harmonic {
            nodes: (0..80).map(|v| (v + i) % 80).collect(),
        })
        .collect();
    let mut client = Client::connect(addr).expect("connect");
    // Warm the pipeline once, then sever the proxied replica MID-FRAME
    // while a deep pipeline is in flight (TRUNCATE also corrupts any
    // frame a fresh dial gets). Every response must still arrive, in
    // order, bitwise identical — the failover may not cross-pair frames.
    assert!(client.pipeline(&reqs[..4]).is_ok());
    let responses = std::thread::scope(|s| {
        let proxy = &proxy;
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(3));
            proxy.set_mode(TRUNCATE);
        });
        client
            .pipeline(&reqs)
            .expect("pipeline survives replica loss")
    });
    for (req, resp) in reqs.iter().zip(&responses) {
        let Request::Harmonic { nodes } = req else {
            unreachable!()
        };
        assert_eq!(
            resp,
            &adsketch::serve::Response::Floats(local.harmonic_batch(nodes)),
            "response pairing broke after mid-pipeline replica loss"
        );
    }

    drop(proxy);
    r_handle.shutdown();
    r_join.join().expect("router thread").expect("router run");
    for (h, j) in [
        (b0a_handle, b0a_join),
        (b0b_handle, b0b_join),
        (b1_handle, b1_join),
    ] {
        h.shutdown();
        j.join().expect("backend thread").expect("backend run");
    }
}

#[test]
fn hedged_reads_mask_straggling_replicas() {
    let g = generators::gnp(50, 0.1, 13);
    let ads = AdsSet::build(&g, 3, 5);
    let frozen = ads.freeze();
    let local = QueryEngine::new(&frozen);
    let scratch = Scratch::new("rep_hedge");
    freeze_sharded(&ads, 1, &scratch.0).expect("freeze_sharded");

    let (b0a_addr, b0a_handle, b0a_join) = spawn_backend(&scratch.0, 0);
    let (b0b_addr, b0b_handle, b0b_join) = spawn_backend(&scratch.0, 0);
    // Replica 0 accepts the handshake and then never answers anything —
    // a hard straggler. The read deadline is deliberately huge: only the
    // hedge can produce fast answers.
    let proxy = FlakyProxy::spawn(b0a_addr);
    proxy.set_mode(STALL);
    let config = RouterConfig {
        connect_timeout: Duration::from_millis(250),
        read_timeout: Duration::from_secs(5),
        retries: 1,
        failure_threshold: 100_000,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(100),
        probe_interval: Duration::from_millis(25),
        hedge_delay: Some(Duration::from_millis(25)),
        degraded: false,
        cache_bytes: 0,
        coalesce_window: None,
    };
    let (addr, r_handle, r_join) =
        spawn_router(&scratch.0, vec![vec![proxy.addr, b0b_addr]], 1, config);

    let mut client = Client::connect(addr).expect("connect");
    let nodes: Vec<NodeId> = (0..50).collect();
    let baseline = local.harmonic_batch(&nodes);
    let t0 = Instant::now();
    for _ in 0..3 {
        assert_eq!(
            client.harmonic(&nodes).expect("hedged answer"),
            baseline,
            "hedged answers must stay bitwise identical"
        );
    }
    // 3 requests × ~25 ms hedge delay, far under one 5 s read timeout:
    // the answers came from the hedge, not from waiting the straggler
    // out.
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "hedging did not mask the straggler: {:?}",
        t0.elapsed()
    );

    drop(proxy);
    r_handle.shutdown();
    r_join.join().expect("router thread").expect("router run");
    for (h, j) in [(b0a_handle, b0a_join), (b0b_handle, b0b_join)] {
        h.shutdown();
        j.join().expect("backend thread").expect("backend run");
    }
}

#[test]
fn degraded_mode_serves_typed_slots_for_dead_shards() {
    let g = generators::gnp(40, 0.1, 17);
    let ads = AdsSet::build(&g, 2, 9);
    let frozen = ads.freeze();
    let local = QueryEngine::new(&frozen);
    let scratch = Scratch::new("rep_degraded");
    freeze_sharded(&ads, 2, &scratch.0).expect("freeze_sharded");
    let manifest = adsketch::core::ShardManifest::load(
        scratch.0.join(adsketch::core::frozen::SHARD_MANIFEST_FILE),
    )
    .expect("manifest");
    let shard0_end = manifest.records()[0].end as NodeId;

    let (b0_addr, b0_handle, b0_join) = spawn_backend(&scratch.0, 0);
    let (b1_addr, b1_handle, b1_join) = spawn_backend(&scratch.0, 1);
    let mut config = fast_config();
    config.degraded = true;
    config.failure_threshold = 3;
    let (addr, r_handle, r_join) =
        spawn_router(&scratch.0, vec![vec![b0_addr], vec![b1_addr]], 1, config);

    let mut client = Client::connect(addr).expect("connect");
    let all: Vec<NodeId> = (0..40).collect();
    let baseline = local.harmonic_batch(&all);
    // Healthy: degraded mode is invisible — plain Floats, all Ok.
    let slots = client
        .floats_partial(&Request::Harmonic { nodes: all.clone() })
        .expect("healthy partial");
    assert_eq!(
        slots
            .iter()
            .map(|s| *s.as_ref().expect("ok"))
            .collect::<Vec<_>>(),
        baseline
    );

    // Shard 1's only replica dies: spanning float batches now answer
    // with typed per-request slots — values for shard 0's nodes (still
    // bitwise identical), ERR_SHARD_DOWN for exactly shard 1's.
    b1_handle.shutdown();
    b1_join
        .join()
        .expect("backend thread")
        .expect("backend run");
    for round in 0..3 {
        let slots = client
            .floats_partial(&Request::Harmonic { nodes: all.clone() })
            .expect("degraded partial");
        assert_eq!(slots.len(), all.len());
        for (&v, slot) in all.iter().zip(&slots) {
            if v < shard0_end {
                assert_eq!(slot, &Ok(baseline[v as usize]), "round {round}, node {v}");
            } else {
                assert_eq!(slot, &Err(ERR_SHARD_DOWN), "round {round}, node {v}");
            }
        }
    }
    // A batch owned entirely by the dead shard: every slot down (the
    // single-shard fast path degrades too).
    let dead_only: Vec<NodeId> = (shard0_end..40).collect();
    let slots = client
        .floats_partial(&Request::Harmonic {
            nodes: dead_only.clone(),
        })
        .expect("all-down partial");
    assert!(slots.iter().all(|s| s == &Err(ERR_SHARD_DOWN)));
    // Jaccard: same-shard pairs on the live shard still answer bitwise;
    // any pair touching the dead shard is typed down.
    let pairs: Vec<(NodeId, NodeId)> = vec![(0, 1), (0, 39), (39, 38)];
    let want = local.jaccard_batch(&pairs, 2.0);
    let slots = client
        .floats_partial(&Request::Jaccard { d: 2.0, pairs })
        .expect("degraded jaccard");
    assert_eq!(slots[0], Ok(want[0]));
    assert_eq!(slots[1], Err(ERR_SHARD_DOWN));
    assert_eq!(slots[2], Err(ERR_SHARD_DOWN));
    // Curve batches stay all-or-nothing even in degraded mode.
    let err = client.neighborhood_function(&all).unwrap_err();
    assert!(matches!(err, ServeError::Remote { .. }));

    r_handle.shutdown();
    r_join.join().expect("router thread").expect("router run");
    b0_handle.shutdown();
    b0_join
        .join()
        .expect("backend thread")
        .expect("backend run");
}

#[test]
fn router_shutdown_is_prompt_despite_a_slow_probe_interval() {
    let g = generators::gnp(30, 0.1, 23);
    let ads = AdsSet::build(&g, 2, 2);
    // A glacial probe interval: without the condvar nudge, shutdown
    // would stall until the prober's next tick.
    let mut config = fast_config();
    config.probe_interval = Duration::from_secs(30);
    config.failure_threshold = 1;
    let mut guard = ReplicaFleet::spawn(&ads, 1, 2, 1, "rep_shutdown", config);
    let mut client = Client::connect(guard.addr).expect("connect");
    let nodes: Vec<NodeId> = (0..30).collect();

    // Open a circuit so shutdown happens with the breaker engaged.
    guard.kill(0, 0);
    for _ in 0..3 {
        client.harmonic(&nodes).expect("replica 1 serves");
    }
    drop(client);
    let took = guard.shutdown_router_timed();
    assert!(
        took < Duration::from_secs(3),
        "router shutdown waited out the probe interval: {took:?}"
    );
}

proptest! {
    /// Random tiny graph, random fleet shape, one replica of every
    /// shard dead: round-robin + failover never reorders the
    /// request-order merge — answers stay bitwise identical to the
    /// local engine.
    #[test]
    fn failover_and_round_robin_never_reorder_the_merge(
        n in 2usize..20,
        seed in 0u64..500,
        k in 1usize..4,
        shards in 1usize..4,
        dead_rep in 0usize..2,
    ) {
        let g = generators::gnp_directed(n, 0.15, seed);
        let ads = AdsSet::build(&g, k, seed);
        let frozen = ads.freeze();
        let local = QueryEngine::new(&frozen);
        let scratch = Scratch::new("rep_prop");
        freeze_sharded(&ads, shards, &scratch.0).expect("freeze_sharded");
        let mut replicas = Vec::with_capacity(shards);
        let mut cleanup = Vec::new();
        for shard in 0..shards {
            let (live, handle, join) = spawn_backend(&scratch.0, shard);
            cleanup.push((handle, join));
            // One live replica, one dead port — which slot is dead
            // varies, so both round-robin positions get exercised.
            let mut reps = vec![live, dead_port()];
            reps.swap(0, dead_rep);
            replicas.push(reps);
        }
        let (addr, r_handle, r_join) = spawn_router(&scratch.0, replicas, 2, fast_config());

        let mut client = Client::connect(addr).expect("connect");
        let nodes: Vec<NodeId> = (0..n as NodeId).collect();
        let rev: Vec<NodeId> = nodes.iter().rev().copied().collect();
        prop_assert_eq!(
            client.harmonic(&rev).expect("harmonic"),
            local.harmonic_batch(&rev)
        );
        let pairs: Vec<(NodeId, NodeId)> = nodes
            .iter()
            .map(|&v| (v, (v + n as NodeId / 2) % n as NodeId))
            .collect();
        prop_assert_eq!(
            client.jaccard(1.5, &pairs).expect("jaccard"),
            local.jaccard_batch(&pairs, 1.5)
        );

        r_handle.shutdown();
        r_join.join().expect("router thread").expect("router run");
        for (h, j) in cleanup {
            h.shutdown();
            j.join().expect("backend thread").expect("backend run");
        }
    }
}
