//! Cross-crate integration tests: graph substrate → ADS builders → HIP
//! estimators → exact baselines, plus the graph/stream equivalence the
//! paper's Section 3.1 rests on.

use adsketch::core::builder::{dp, local_updates, pruned_dijkstra};
use adsketch::core::{basic, centrality, reference, size_est, uniform_ranks, AdsSet};
use adsketch::graph::{exact, generators, Graph};
use adsketch::stream::streaming_ads::FirstOccurrenceAds;
use adsketch::util::stats::{cv_basic, cv_hip, ErrorStats};
use adsketch::util::RankHasher;

/// All three scalable builders and the brute force agree bitwise on an
/// unweighted digraph; the two weighted-capable ones agree on a weighted
/// one.
#[test]
fn all_builders_agree_end_to_end() {
    let k = 4;
    // Unweighted directed.
    let g = generators::gnp_directed(120, 0.04, 99);
    let ranks = uniform_ranks(g.num_nodes(), 1);
    let brute = reference::build_bottomk(&g, k, &ranks);
    assert_eq!(pruned_dijkstra::build(&g, k, &ranks).unwrap(), brute);
    assert_eq!(dp::build(&g, k, &ranks).unwrap(), brute);
    assert_eq!(local_updates::build(&g, k, &ranks).unwrap(), brute);
    // Weighted directed.
    let gw = generators::random_weighted_digraph(90, 4, 0.5, 4.5, 5);
    let ranks_w = uniform_ranks(gw.num_nodes(), 2);
    let brute_w = reference::build_bottomk(&gw, k, &ranks_w);
    assert_eq!(pruned_dijkstra::build(&gw, k, &ranks_w).unwrap(), brute_w);
    assert_eq!(local_updates::build(&gw, k, &ranks_w).unwrap(), brute_w);
}

/// A path digraph's ADS equals the first-occurrence streaming ADS over the
/// same elements in arrival order (Section 3.1: streams are ADSs over
/// elapsed time).
#[test]
fn graph_and_stream_ads_coincide_on_a_path() {
    let n = 400usize;
    let k = 8;
    let seed = 31;
    // Path 0→1→…→n−1: ADS(0) samples node j at distance j.
    let arcs: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
    let g = Graph::directed(n, &arcs).unwrap();
    let ads = AdsSet::build(&g, k, seed); // uses RankHasher(seed) ranks
    let graph_entries = ads.sketch(0).entries();

    let mut stream = FirstOccurrenceAds::new(k, seed);
    for e in 0..n as u64 {
        stream.observe(e, e as f64);
        stream.observe(e / 3, e as f64); // duplicates must be harmless
    }
    let stream_entries = stream.entries();

    assert_eq!(graph_entries.len(), stream_entries.len());
    for (gent, sent) in graph_entries.iter().zip(stream_entries) {
        assert_eq!(gent.node as u64, sent.element);
        assert_eq!(gent.dist, sent.time);
        assert_eq!(gent.rank, sent.rank);
    }
    // And the HIP weights agree too.
    let hip = ads.sketch(0).hip_weights();
    for (hit, sent) in hip.items().iter().zip(stream_entries) {
        assert!((hit.weight - sent.weight).abs() < 1e-12);
    }
}

/// HIP beats basic beats size-only, and all are unbiased, measured on one
/// fixed graph over many sketch seeds.
#[test]
fn estimator_hierarchy_on_a_graph() {
    let g = generators::barabasi_albert(600, 3, 77);
    let k = 8;
    let truth = adsketch::graph::bfs::reachable_count(&g, 0) as f64;
    let mut hip = ErrorStats::new(truth);
    let mut bas = ErrorStats::new(truth);
    let mut siz = ErrorStats::new(truth);
    for seed in 0..400 {
        let ads = AdsSet::build(&g, k, seed);
        hip.push(ads.hip(0).reachable_estimate());
        bas.push(basic::reachable(ads.sketch(0)));
        siz.push(size_est::cardinality_at(ads.sketch(0), f64::INFINITY));
    }
    for (name, e) in [("hip", &hip), ("basic", &bas), ("size", &siz)] {
        let z = e.relative_bias() / e.bias_std_error();
        assert!(z.abs() < 4.5, "{name} bias z = {z}");
    }
    assert!(
        hip.nrmse() < bas.nrmse(),
        "HIP {} vs basic {}",
        hip.nrmse(),
        bas.nrmse()
    );
    assert!(
        bas.nrmse() < siz.nrmse(),
        "basic {} vs size {}",
        bas.nrmse(),
        siz.nrmse()
    );
    // And both match their theory curves loosely.
    assert!((hip.nrmse() - cv_hip(k)).abs() / cv_hip(k) < 0.35);
    assert!((bas.nrmse() - cv_basic(k)).abs() / cv_basic(k) < 0.35);
}

/// Neighborhood-function estimates are unbiased at every distance of a
/// weighted graph.
#[test]
fn neighborhood_function_unbiased_on_weighted_graph() {
    let g = generators::random_weighted_digraph(150, 5, 0.5, 2.5, 3);
    let nf = exact::neighborhood_function(&g, 7);
    // Probe three distances spanning the range.
    let dmax = *nf.distances.last().unwrap();
    for frac in [0.25, 0.5, 1.0] {
        let d = dmax * frac;
        let truth = nf.cardinality_at(d) as f64;
        let mut err = ErrorStats::new(truth);
        for seed in 0..300 {
            let ads = AdsSet::build(&g, 8, seed + 1000);
            err.push(ads.hip(7).cardinality_at(d));
        }
        if err.bias_std_error() == 0.0 {
            // Zero variance ⇒ the estimator was exact (n_d ≤ k).
            assert_eq!(err.relative_bias(), 0.0, "d = {d}");
        } else {
            let z = err.relative_bias() / err.bias_std_error();
            assert!(z.abs() < 4.5, "d = {d}: bias z = {z}");
        }
    }
}

/// The k-mins and k-partition flavors estimate the same truth from the
/// same graph.
#[test]
fn flavors_agree_on_reachability_truth() {
    let g = generators::gnp(200, 0.03, 8);
    let truth = adsketch::graph::bfs::reachable_count(&g, 0) as f64;
    let k = 8;
    let mut kmins = ErrorStats::new(truth);
    let mut kpart = ErrorStats::new(truth);
    for seed in 0..250u64 {
        let h = RankHasher::new(seed);
        let km = adsketch::core::builder::kmins::build(&g, k, &h).unwrap();
        kmins.push(km[0].hip_weights().reachable_estimate());
        let kp = adsketch::core::builder::kpartition::build(&g, k, &h).unwrap();
        kpart.push(kp[0].hip_weights().reachable_estimate());
    }
    for (name, e) in [("kmins", &kmins), ("kpartition", &kpart)] {
        let z = e.relative_bias() / e.bias_std_error();
        assert!(z.abs() < 4.5, "{name} bias z = {z}");
    }
}

/// Harmonic centrality ranking from sketches correlates strongly with the
/// exact ranking (Spearman on a medium graph).
#[test]
fn centrality_ranking_correlates_with_exact() {
    let n = 300;
    let g = generators::barabasi_albert(n, 3, 5);
    let ads = AdsSet::build(&g, 32, 9);
    let est: Vec<f64> = (0..n as u32)
        .map(|v| centrality::harmonic(&ads.hip(v)))
        .collect();
    let exact: Vec<f64> = (0..n as u32)
        .map(|v| exact::harmonic_centrality(&g, v))
        .collect();
    let rho = spearman(&est, &exact);
    assert!(rho > 0.85, "Spearman correlation {rho}");
}

fn spearman(a: &[f64], b: &[f64]) -> f64 {
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].total_cmp(&v[j]));
        let mut r = vec![0.0; v.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let (ra, rb) = (rank(a), rank(b));
    let n = a.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..a.len() {
        num += (ra[i] - mean) * (rb[i] - mean);
        da += (ra[i] - mean).powi(2);
        db += (rb[i] - mean).powi(2);
    }
    num / (da * db).sqrt()
}

/// Edge-list I/O round-trips through ADS construction deterministically.
#[test]
fn io_roundtrip_preserves_sketches() {
    let g = generators::gnp_directed(80, 0.06, 12);
    let mut buf = Vec::new();
    adsketch::graph::io::write_edge_list(&g, &mut buf).unwrap();
    let g2 = adsketch::graph::io::read_edge_list(buf.as_slice())
        .unwrap()
        .into_directed()
        .unwrap();
    // Note: isolated trailing nodes would be dropped by max-id inference;
    // this generator's graphs are dense enough that ids survive.
    assert_eq!(g.num_nodes(), g2.num_nodes());
    let a = AdsSet::build(&g, 4, 3);
    let b = AdsSet::build(&g2, 4, 3);
    assert_eq!(a, b);
}

/// Weighted-node sketches (Section 9) estimate β-weighted neighborhoods
/// on a real graph.
#[test]
fn weighted_node_sketches_on_graph() {
    use adsketch::core::ads_set::build_with_ranks;
    use adsketch::core::weighted;
    let g = generators::gnp(150, 0.05, 21);
    let betas: Vec<f64> = (0..150).map(|i| 1.0 + (i % 7) as f64).collect();
    let truth: f64 = {
        // Total β over the reachable set of node 0.
        let reach = adsketch::graph::dijkstra::dijkstra_distances(&g, 0);
        reach
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .map(|(v, _)| betas[v])
            .sum()
    };
    let mut err = ErrorStats::new(truth);
    for seed in 0..400 {
        let ranks = weighted::exponential_ranks(&betas, seed);
        let ads = build_with_ranks(&g, 8, &ranks).unwrap();
        err.push(weighted::neighborhood_weight_at(
            ads.sketch(0),
            &betas,
            f64::INFINITY,
        ));
    }
    let z = err.relative_bias() / err.bias_std_error();
    assert!(z.abs() < 4.5, "weighted bias z = {z}");
}
