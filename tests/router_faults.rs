//! Fault-injection harness for the distributed tier: dead ports, killed
//! backends, and a mock backend serving corrupt frames. In every
//! scenario the router must answer with a **typed error frame** within
//! its deadline — never a panic, never a hang, never a silently partial
//! merge — and must recover on the next request once the backend is
//! healthy again. The last test pins the circuit breaker's other
//! promise: a backend that *stays* dead sees a bounded, backed-off dial
//! rate instead of one connect attempt per incoming request.

mod common;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adsketch::core::frozen::SHARD_MANIFEST_FILE;
use adsketch::core::{freeze_sharded, AdsSet, QueryEngine, ShardManifest};
use adsketch::graph::{generators, NodeId};
use adsketch::serve::{Client, RouterConfig};

use common::{
    assert_backend_error, dead_port, fast_config, spawn_backend, spawn_router, FlakyProxy, Scratch,
    BLACKHOLE, GARBAGE, HEALTHY, REFUSE, REJECT_HANDSHAKE, STALL, TRUNCATE,
};

/// Generous wall-clock ceiling: deadlines + retries + CI slack. The
/// point is "bounded", not "fast".
const DEADLINE: Duration = Duration::from_secs(5);

#[test]
fn dead_backend_port_yields_typed_error_and_live_shards_still_serve() {
    let g = generators::gnp(40, 0.1, 3);
    let ads = AdsSet::build(&g, 2, 1);
    let frozen = ads.freeze();
    let scratch = Scratch::new("faults_dead_port");
    freeze_sharded(&ads, 2, &scratch.0).expect("freeze_sharded");
    let manifest = ShardManifest::load(scratch.0.join(SHARD_MANIFEST_FILE)).expect("manifest");
    let shard0_end = manifest.records()[0].end as NodeId;

    let (b0_addr, b0_handle, b0_join) = spawn_backend(&scratch.0, 0);
    let (addr, r_handle, r_join) = spawn_router(
        &scratch.0,
        vec![vec![b0_addr], vec![dead_port()]],
        1,
        fast_config(),
    );

    let mut client = Client::connect(addr).expect("connect router");
    // A batch spanning the dead shard fails whole, typed, and bounded.
    let all: Vec<NodeId> = (0..40).collect();
    let t0 = Instant::now();
    let err = client.harmonic(&all).unwrap_err();
    assert!(t0.elapsed() < DEADLINE, "took {:?}", t0.elapsed());
    assert_backend_error(err);
    // The client connection survived, and a batch owned entirely by the
    // live shard still answers bitwise identically.
    let owned: Vec<NodeId> = (0..shard0_end).collect();
    assert_eq!(
        client.harmonic(&owned).expect("live shard serves"),
        QueryEngine::new(&frozen).harmonic_batch(&owned)
    );

    r_handle.shutdown();
    r_join.join().expect("router thread").expect("router run");
    b0_handle.shutdown();
    b0_join
        .join()
        .expect("backend thread")
        .expect("backend run");
}

#[test]
fn killing_a_backend_mid_stream_fails_whole_requests_without_partial_answers() {
    let g = generators::gnp(40, 0.12, 7);
    let ads = AdsSet::build(&g, 3, 2);
    let frozen = ads.freeze();
    let scratch = Scratch::new("faults_kill");
    freeze_sharded(&ads, 2, &scratch.0).expect("freeze_sharded");
    let manifest = ShardManifest::load(scratch.0.join(SHARD_MANIFEST_FILE)).expect("manifest");
    let shard0_end = manifest.records()[0].end as NodeId;

    let (b0_addr, b0_handle, b0_join) = spawn_backend(&scratch.0, 0);
    let (b1_addr, b1_handle, b1_join) = spawn_backend(&scratch.0, 1);
    let (addr, r_handle, r_join) = spawn_router(
        &scratch.0,
        vec![vec![b0_addr], vec![b1_addr]],
        1,
        fast_config(),
    );

    let mut client = Client::connect(addr).expect("connect router");
    let all: Vec<NodeId> = (0..40).collect();
    // Healthy first: establishes the router worker's standing backend
    // connections and proves the fleet works.
    assert_eq!(
        client.harmonic(&all).expect("healthy fleet"),
        QueryEngine::new(&frozen).harmonic_batch(&all)
    );

    // Kill backend 1 for good. The router's standing connection to it is
    // now dead and its port refuses connects.
    b1_handle.shutdown();
    b1_join
        .join()
        .expect("backend thread")
        .expect("backend run");

    let t0 = Instant::now();
    let err = client.harmonic(&all).unwrap_err();
    assert!(t0.elapsed() < DEADLINE, "took {:?}", t0.elapsed());
    let message = assert_backend_error(err);
    assert!(message.contains("shard 1"), "{message}");

    // No partial merges: every spanning request keeps failing whole,
    // while shard-0-only batches keep answering bitwise identically.
    assert_backend_error(client.harmonic(&all).unwrap_err());
    let owned: Vec<NodeId> = (0..shard0_end).collect();
    assert_eq!(
        client.harmonic(&owned).expect("live shard serves"),
        QueryEngine::new(&frozen).harmonic_batch(&owned)
    );

    r_handle.shutdown();
    r_join.join().expect("router thread").expect("router run");
    b0_handle.shutdown();
    b0_join
        .join()
        .expect("backend thread")
        .expect("backend run");
}

#[test]
fn corrupt_backend_frames_yield_typed_errors_then_clean_recovery() {
    let g = generators::gnp(40, 0.12, 9);
    let ads = AdsSet::build(&g, 3, 4);
    let frozen = ads.freeze();
    let local = QueryEngine::new(&frozen);
    let scratch = Scratch::new("faults_proxy");
    freeze_sharded(&ads, 2, &scratch.0).expect("freeze_sharded");

    let (b0_addr, b0_handle, b0_join) = spawn_backend(&scratch.0, 0);
    let (b1_addr, b1_handle, b1_join) = spawn_backend(&scratch.0, 1);
    // Shard 1 sits behind the flaky proxy; the router only knows the
    // proxy's address.
    let proxy = FlakyProxy::spawn(b1_addr);
    let (addr, r_handle, r_join) = spawn_router(
        &scratch.0,
        vec![vec![b0_addr], vec![proxy.addr]],
        1,
        fast_config(),
    );

    let mut client = Client::connect(addr).expect("connect router");
    let all: Vec<NodeId> = (0..40).collect();
    let baseline = local.harmonic_batch(&all);
    assert_eq!(client.harmonic(&all).expect("healthy"), baseline);

    for (name, mode) in [
        ("refuse", REFUSE),
        ("blackhole", BLACKHOLE),
        ("reject-handshake", REJECT_HANDSHAKE),
        ("garbage", GARBAGE),
        ("truncate", TRUNCATE),
        ("stall", STALL),
    ] {
        proxy.set_mode(mode);
        let t0 = Instant::now();
        let err = client.harmonic(&all).unwrap_err();
        assert!(t0.elapsed() < DEADLINE, "{name}: took {:?}", t0.elapsed());
        let message = assert_backend_error(err);
        assert!(message.contains("shard 1"), "{name}: {message}");

        // Back to healthy: the very next request must succeed, bitwise
        // identical — the router reconnects, no poisoned state.
        proxy.set_mode(HEALTHY);
        assert_eq!(
            client.harmonic(&all).expect("recovered"),
            baseline,
            "{name}: recovery"
        );
    }

    // Cross-shard jaccard recovers too (prefix-fetch path).
    let pairs: Vec<(NodeId, NodeId)> = (0..20).map(|v| (v, v + 20)).collect();
    assert_eq!(
        client.jaccard(2.0, &pairs).expect("cross-shard jaccard"),
        local.jaccard_batch(&pairs, 2.0)
    );

    drop(proxy);
    r_handle.shutdown();
    r_join.join().expect("router thread").expect("router run");
    b0_handle.shutdown();
    b0_join
        .join()
        .expect("backend thread")
        .expect("backend run");
    b1_handle.shutdown();
    b1_join
        .join()
        .expect("backend thread")
        .expect("backend run");
}

/// A listener that counts every accepted connection and hangs up — a
/// permanently dead backend whose dial pressure is observable.
fn counting_refuser() -> (SocketAddr, Arc<AtomicUsize>, Arc<AtomicBool>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind counter");
    let addr = listener.local_addr().expect("addr");
    let count = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    {
        let (count, stop) = (Arc::clone(&count), Arc::clone(&stop));
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                count.fetch_add(1, Ordering::SeqCst);
                drop(conn);
            }
        });
    }
    (addr, count, stop)
}

#[test]
fn dead_backend_sees_a_bounded_dial_rate_not_per_request_hammering() {
    let g = generators::gnp(40, 0.1, 5);
    let ads = AdsSet::build(&g, 2, 3);
    let scratch = Scratch::new("faults_dial_rate");
    freeze_sharded(&ads, 2, &scratch.0).expect("freeze_sharded");

    let (b0_addr, b0_handle, b0_join) = spawn_backend(&scratch.0, 0);
    let (dead_addr, dials, counter_stop) = counting_refuser();
    // A realistic breaker: three strikes open the circuit, reconnects
    // back off 50 ms → 200 ms, the prober re-checks on that cadence.
    let config = RouterConfig {
        connect_timeout: Duration::from_millis(250),
        read_timeout: Duration::from_millis(400),
        retries: 1,
        failure_threshold: 3,
        backoff_base: Duration::from_millis(50),
        backoff_cap: Duration::from_millis(200),
        probe_interval: Duration::from_millis(25),
        hedge_delay: None,
        degraded: false,
        cache_bytes: 0,
        coalesce_window: None,
    };
    let (addr, r_handle, r_join) =
        spawn_router(&scratch.0, vec![vec![b0_addr], vec![dead_addr]], 1, config);

    // Hammer the router with requests needing the dead shard for a fixed
    // window. Every request must fail typed; the dial count must track
    // the backoff schedule, not the request rate.
    let mut client = Client::connect(addr).expect("connect router");
    let all: Vec<NodeId> = (0..40).collect();
    let window = Duration::from_millis(1200);
    let t0 = Instant::now();
    let mut failed = 0usize;
    while t0.elapsed() < window {
        assert_backend_error(client.harmonic(&all).unwrap_err());
        failed += 1;
    }
    let dialed = dials.load(Ordering::SeqCst);
    // Once the circuit opens (3 failures), requests fail fast without
    // touching the endpoint, so far more requests than dials must fit
    // the window.
    assert!(failed >= 20, "requests should fail fast, got {failed}");
    assert!(dialed >= 1, "the dead endpoint was never tried");
    // 3 dials to open + one half-open probe per backed-off cooldown
    // (≤ 200 ms each) over 1.2 s, plus slack: far below `failed`.
    assert!(
        dialed <= 25,
        "dead backend hammered: {dialed} dials for {failed} requests in {window:?}"
    );

    counter_stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(dead_addr);
    r_handle.shutdown();
    r_join.join().expect("router thread").expect("router run");
    b0_handle.shutdown();
    b0_join
        .join()
        .expect("backend thread")
        .expect("backend run");
}
