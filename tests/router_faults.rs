//! Fault-injection harness for the distributed tier: dead ports, killed
//! backends, and a mock backend serving corrupt frames. In every
//! scenario the router must answer with a **typed error frame** within
//! its deadline — never a panic, never a hang, never a silently partial
//! merge — and must recover on the next request once the backend is
//! healthy again.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use adsketch::core::frozen::SHARD_MANIFEST_FILE;
use adsketch::core::{freeze_sharded, AdsSet, QueryEngine, ShardManifest};
use adsketch::graph::{generators, NodeId};
use adsketch::serve::proto::{ERR_BACKEND, WIRE_VERSION};
use adsketch::serve::{BackendStore, Client, Router, RouterConfig, ServeError, ServerHandle};

/// Tight deadlines so fault scenarios resolve in test time.
fn fast_config() -> RouterConfig {
    RouterConfig {
        connect_timeout: Duration::from_millis(250),
        read_timeout: Duration::from_millis(400),
        retries: 1,
    }
}

/// Generous wall-clock ceiling: deadlines + retries + CI slack. The
/// point is "bounded", not "fast".
const DEADLINE: Duration = Duration::from_secs(5);

fn assert_backend_error(err: ServeError) -> String {
    match err {
        ServeError::Remote { code, message } => {
            assert_eq!(code, ERR_BACKEND, "wrong error code: {message}");
            message
        }
        other => panic!("expected a typed ERR_BACKEND frame, got {other}"),
    }
}

struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("adsketch_test_router_faults_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn spawn_backend(
    dir: &std::path::Path,
    shard: usize,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<u64>>,
) {
    let store = BackendStore::load(dir, shard).expect("load backend shard");
    let server = store.into_server("127.0.0.1:0", 1).expect("bind backend");
    let addr = server.local_addr().expect("backend addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join)
}

fn spawn_router(
    dir: &std::path::Path,
    backends: Vec<SocketAddr>,
) -> (
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<u64>>,
) {
    let manifest = ShardManifest::load(dir.join(SHARD_MANIFEST_FILE)).expect("manifest");
    let router =
        Router::bind("127.0.0.1:0", manifest, backends, 1, fast_config()).expect("bind router");
    let addr = router.local_addr().expect("router addr");
    let handle = router.handle();
    let join = std::thread::spawn(move || router.run());
    (addr, handle, join)
}

/// An ephemeral-port address nothing listens on (bound once, then
/// dropped, so connects are refused immediately).
fn dead_port() -> SocketAddr {
    TcpListener::bind("127.0.0.1:0")
        .expect("reserve port")
        .local_addr()
        .expect("addr")
}

#[test]
fn dead_backend_port_yields_typed_error_and_live_shards_still_serve() {
    let g = generators::gnp(40, 0.1, 3);
    let ads = AdsSet::build(&g, 2, 1);
    let frozen = ads.freeze();
    let scratch = Scratch::new("dead_port");
    freeze_sharded(&ads, 2, &scratch.0).expect("freeze_sharded");
    let manifest = ShardManifest::load(scratch.0.join(SHARD_MANIFEST_FILE)).expect("manifest");
    let shard0_end = manifest.records()[0].end as NodeId;

    let (b0_addr, b0_handle, b0_join) = spawn_backend(&scratch.0, 0);
    let (addr, r_handle, r_join) = spawn_router(&scratch.0, vec![b0_addr, dead_port()]);

    let mut client = Client::connect(addr).expect("connect router");
    // A batch spanning the dead shard fails whole, typed, and bounded.
    let all: Vec<NodeId> = (0..40).collect();
    let t0 = Instant::now();
    let err = client.harmonic(&all).unwrap_err();
    assert!(t0.elapsed() < DEADLINE, "took {:?}", t0.elapsed());
    assert_backend_error(err);
    // The client connection survived, and a batch owned entirely by the
    // live shard still answers bitwise identically.
    let owned: Vec<NodeId> = (0..shard0_end).collect();
    assert_eq!(
        client.harmonic(&owned).expect("live shard serves"),
        QueryEngine::new(&frozen).harmonic_batch(&owned)
    );

    r_handle.shutdown();
    r_join.join().expect("router thread").expect("router run");
    b0_handle.shutdown();
    b0_join
        .join()
        .expect("backend thread")
        .expect("backend run");
}

#[test]
fn killing_a_backend_mid_stream_fails_whole_requests_without_partial_answers() {
    let g = generators::gnp(40, 0.12, 7);
    let ads = AdsSet::build(&g, 3, 2);
    let frozen = ads.freeze();
    let scratch = Scratch::new("kill");
    freeze_sharded(&ads, 2, &scratch.0).expect("freeze_sharded");
    let manifest = ShardManifest::load(scratch.0.join(SHARD_MANIFEST_FILE)).expect("manifest");
    let shard0_end = manifest.records()[0].end as NodeId;

    let (b0_addr, b0_handle, b0_join) = spawn_backend(&scratch.0, 0);
    let (b1_addr, b1_handle, b1_join) = spawn_backend(&scratch.0, 1);
    let (addr, r_handle, r_join) = spawn_router(&scratch.0, vec![b0_addr, b1_addr]);

    let mut client = Client::connect(addr).expect("connect router");
    let all: Vec<NodeId> = (0..40).collect();
    // Healthy first: establishes the router worker's standing backend
    // connections and proves the fleet works.
    assert_eq!(
        client.harmonic(&all).expect("healthy fleet"),
        QueryEngine::new(&frozen).harmonic_batch(&all)
    );

    // Kill backend 1 for good. The router's standing connection to it is
    // now dead and its port refuses connects.
    b1_handle.shutdown();
    b1_join
        .join()
        .expect("backend thread")
        .expect("backend run");

    let t0 = Instant::now();
    let err = client.harmonic(&all).unwrap_err();
    assert!(t0.elapsed() < DEADLINE, "took {:?}", t0.elapsed());
    let message = assert_backend_error(err);
    assert!(message.contains("shard 1"), "{message}");

    // No partial merges: every spanning request keeps failing whole,
    // while shard-0-only batches keep answering bitwise identically.
    assert_backend_error(client.harmonic(&all).unwrap_err());
    let owned: Vec<NodeId> = (0..shard0_end).collect();
    assert_eq!(
        client.harmonic(&owned).expect("live shard serves"),
        QueryEngine::new(&frozen).harmonic_batch(&owned)
    );

    r_handle.shutdown();
    r_join.join().expect("router thread").expect("router run");
    b0_handle.shutdown();
    b0_join
        .join()
        .expect("backend thread")
        .expect("backend run");
}

/// What the flaky proxy does with new connections.
const HEALTHY: u8 = 0;
/// Close immediately, before the handshake.
const REFUSE: u8 = 1;
/// Accept the TCP connection, then never read or write a byte — the
/// connection looks alive but the handshake reply never comes.
const BLACKHOLE: u8 = 6;
/// Answer the handshake with a reject status.
const REJECT_HANDSHAKE: u8 = 2;
/// Accept the handshake, then answer with an insane length prefix.
const GARBAGE: u8 = 3;
/// Accept the handshake, then answer a truncated frame and close.
const TRUNCATE: u8 = 4;
/// Accept the handshake, swallow requests, never answer.
const STALL: u8 = 5;

/// A TCP proxy in front of a real backend whose failure mode can be
/// switched at runtime. Switching also severs standing connections, so
/// the router notices immediately — this is how "the backend died and
/// came back" is simulated on one stable address (rebinding a real
/// server's port would race TIME_WAIT).
struct FlakyProxy {
    addr: SocketAddr,
    mode: Arc<AtomicU8>,
    stop: Arc<AtomicBool>,
    live: Arc<Mutex<Vec<TcpStream>>>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl FlakyProxy {
    fn spawn(upstream: SocketAddr) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        let addr = listener.local_addr().expect("proxy addr");
        let mode = Arc::new(AtomicU8::new(HEALTHY));
        let stop = Arc::new(AtomicBool::new(false));
        let live: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let join = {
            let (mode, stop, live) = (Arc::clone(&mode), Arc::clone(&stop), Arc::clone(&live));
            std::thread::spawn(move || proxy_loop(listener, upstream, &mode, &stop, &live))
        };
        Self {
            addr,
            mode,
            stop,
            live,
            join: Some(join),
        }
    }

    fn set_mode(&self, mode: u8) {
        self.mode.store(mode, Ordering::SeqCst);
        for conn in self.live.lock().expect("live list").drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Drop for FlakyProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.set_mode(REFUSE);
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn handshake_accept(conn: &mut TcpStream) -> bool {
    let mut hello = [0u8; 12];
    if conn.read_exact(&mut hello).is_err() {
        return false;
    }
    let mut accept = [1u8; 5];
    accept[1..5].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    conn.write_all(&accept).is_ok()
}

fn proxy_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    mode: &AtomicU8,
    stop: &AtomicBool,
    live: &Mutex<Vec<TcpStream>>,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut client) = conn else { continue };
        if let Ok(clone) = client.try_clone() {
            live.lock().expect("live list").push(clone);
        }
        match mode.load(Ordering::SeqCst) {
            HEALTHY => {
                let Ok(up) = TcpStream::connect(upstream) else {
                    let _ = client.shutdown(std::net::Shutdown::Both);
                    continue;
                };
                if let Ok(clone) = up.try_clone() {
                    live.lock().expect("live list").push(clone);
                }
                let (Ok(mut c2), Ok(mut u2)) = (client.try_clone(), up.try_clone()) else {
                    continue;
                };
                std::thread::spawn(move || {
                    let mut client = client;
                    let mut up = up;
                    let _ = std::io::copy(&mut client, &mut up);
                    let _ = up.shutdown(std::net::Shutdown::Both);
                });
                std::thread::spawn(move || {
                    let _ = std::io::copy(&mut u2, &mut c2);
                    let _ = c2.shutdown(std::net::Shutdown::Both);
                });
            }
            REFUSE => {
                // A plain drop would leave the socket half-open through
                // the clone in `live`; sever it for real.
                let _ = client.shutdown(std::net::Shutdown::Both);
            }
            BLACKHOLE => {
                // Deliberately half-open: the clone in `live` keeps the
                // socket established, and nobody ever answers the
                // handshake. The router's handshake deadline must fire.
                drop(client);
            }
            REJECT_HANDSHAKE => {
                let mut hello = [0u8; 12];
                let _ = client.read_exact(&mut hello);
                let mut reject = [0u8; 5];
                reject[1..5].copy_from_slice(&WIRE_VERSION.to_le_bytes());
                let _ = client.write_all(&reject);
            }
            GARBAGE => {
                if handshake_accept(&mut client) {
                    let mut buf = [0u8; 4096];
                    let _ = client.read(&mut buf);
                    // A length prefix far beyond MAX_FRAME_LEN.
                    let _ = client.write_all(&u32::MAX.to_le_bytes());
                }
            }
            TRUNCATE => {
                if handshake_accept(&mut client) {
                    let mut buf = [0u8; 4096];
                    let _ = client.read(&mut buf);
                    // Declare a 100-byte frame, deliver 10, hang up.
                    let _ = client.write_all(&100u32.to_le_bytes());
                    let _ = client.write_all(&[0u8; 10]);
                }
            }
            _ => {
                if handshake_accept(&mut client) {
                    let mut buf = [0u8; 4096];
                    while !stop.load(Ordering::SeqCst) {
                        match client.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn corrupt_backend_frames_yield_typed_errors_then_clean_recovery() {
    let g = generators::gnp(40, 0.12, 9);
    let ads = AdsSet::build(&g, 3, 4);
    let frozen = ads.freeze();
    let local = QueryEngine::new(&frozen);
    let scratch = Scratch::new("proxy");
    freeze_sharded(&ads, 2, &scratch.0).expect("freeze_sharded");

    let (b0_addr, b0_handle, b0_join) = spawn_backend(&scratch.0, 0);
    let (b1_addr, b1_handle, b1_join) = spawn_backend(&scratch.0, 1);
    // Shard 1 sits behind the flaky proxy; the router only knows the
    // proxy's address.
    let proxy = FlakyProxy::spawn(b1_addr);
    let (addr, r_handle, r_join) = spawn_router(&scratch.0, vec![b0_addr, proxy.addr]);

    let mut client = Client::connect(addr).expect("connect router");
    let all: Vec<NodeId> = (0..40).collect();
    let baseline = local.harmonic_batch(&all);
    assert_eq!(client.harmonic(&all).expect("healthy"), baseline);

    for (name, mode) in [
        ("refuse", REFUSE),
        ("blackhole", BLACKHOLE),
        ("reject-handshake", REJECT_HANDSHAKE),
        ("garbage", GARBAGE),
        ("truncate", TRUNCATE),
        ("stall", STALL),
    ] {
        proxy.set_mode(mode);
        let t0 = Instant::now();
        let err = client.harmonic(&all).unwrap_err();
        assert!(t0.elapsed() < DEADLINE, "{name}: took {:?}", t0.elapsed());
        let message = assert_backend_error(err);
        assert!(message.contains("shard 1"), "{name}: {message}");

        // Back to healthy: the very next request must succeed, bitwise
        // identical — the router reconnects, no poisoned state.
        proxy.set_mode(HEALTHY);
        assert_eq!(
            client.harmonic(&all).expect("recovered"),
            baseline,
            "{name}: recovery"
        );
    }

    // Cross-shard jaccard recovers too (prefix-fetch path).
    let pairs: Vec<(NodeId, NodeId)> = (0..20).map(|v| (v, v + 20)).collect();
    assert_eq!(
        client.jaccard(2.0, &pairs).expect("cross-shard jaccard"),
        local.jaccard_batch(&pairs, 2.0)
    );

    drop(proxy);
    r_handle.shutdown();
    r_join.join().expect("router thread").expect("router run");
    b0_handle.shutdown();
    b0_join
        .join()
        .expect("backend thread")
        .expect("backend run");
    b1_handle.shutdown();
    b1_join
        .join()
        .expect("backend thread")
        .expect("backend run");
}
