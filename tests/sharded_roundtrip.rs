//! Sharded freeze → load round trips must be lossless: every estimator
//! answers **bitwise identically** from the loaded [`ShardedStore`] and
//! from the heap-backed [`AdsSet`] it was frozen from, for every shard
//! count, across directed / weighted / disconnected graphs; corrupted,
//! truncated, swapped, or structurally invalid manifests and shard files
//! must be rejected — mirroring `tests/frozen_roundtrip.rs` for the
//! multi-file store.

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use adsketch::core::frozen::{shard_file_name, Fnv1a64, SHARD_MANIFEST_FILE};
use adsketch::core::{
    basic, centrality, freeze_sharded, freeze_sharded_format, similarity, size_est, AdsSet,
    AdsView, FrozenAdsSet, QueryEngine, ShardManifest, StoreFormat,
};
use adsketch::graph::{generators, Graph, NodeId};
use adsketch::serve::{ServeError, ShardedStore};

/// A scratch directory under the target-adjacent temp dir, wiped on
/// creation and on drop.
struct ShardDir(PathBuf);

impl ShardDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("adsketch_test_sharded_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ShardDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Freezes `ads` into `shards` shard files and loads them back.
fn roundtrip(ads: &AdsSet, shards: usize, tag: &str) -> (ShardDir, ShardedStore) {
    let dir = ShardDir::new(tag);
    let manifest = freeze_sharded(ads, shards, dir.path()).expect("freeze_sharded");
    assert_eq!(manifest.num_shards(), shards);
    let store = ShardedStore::load(dir.path()).expect("load sharded store");
    assert_eq!(store.manifest(), &manifest);
    (dir, store)
}

/// The estimator battery of `tests/frozen_roundtrip.rs`, pointed at a
/// sharded store.
fn assert_estimators_bitwise_equal(ads: &AdsSet, store: &ShardedStore) {
    assert_eq!(store.manifest().k(), ads.k());
    assert_eq!(AdsView::num_nodes(store), ads.num_nodes());
    assert_eq!(AdsView::total_entries(store), ads.total_entries());
    let n = ads.num_nodes() as NodeId;
    for v in 0..n {
        let hip = ads.hip(v);
        assert_eq!(store.hip_weights_of(v), hip, "node {v}: HIP weights");
        assert_eq!(store.hip_reachable(v), hip.reachable_estimate());
        for d in [0.0, 0.5, 1.0, 2.0, 4.0, f64::INFINITY] {
            assert_eq!(store.hip_cardinality_at(v, d), hip.cardinality_at(d));
            if ads.k() > 1 {
                assert_eq!(
                    basic::cardinality_at_in(store, v, d),
                    basic::cardinality_at(ads.sketch(v), d)
                );
            }
            assert_eq!(
                size_est::cardinality_at_in(store, v, d),
                size_est::cardinality_at(ads.sketch(v), d)
            );
        }
        assert_eq!(
            store.neighborhood_function_of(v),
            hip.neighborhood_function()
        );
        assert_eq!(
            centrality::harmonic_in(store, v),
            centrality::harmonic(&hip)
        );
        // Cross-shard pair: u and v generally live on different shards.
        let u = (v + 1) % n.max(1);
        assert_eq!(
            similarity::neighborhood_jaccard_in(store, v, u, 2.0),
            similarity::neighborhood_jaccard(ads.sketch(v), ads.sketch(u), 2.0)
        );
    }
}

/// Strategy: a small directed graph as (n, arcs).
fn small_digraph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..40).prop_flat_map(|n| {
        let arcs = prop::collection::vec((0..n as NodeId, 0..n as NodeId), 0..120);
        (Just(n), arcs)
    })
}

proptest! {
    /// Random graph → build → freeze_sharded → load: every estimator
    /// (and the batch engine) answers bitwise equal to the in-memory
    /// AdsSet, for every shard count.
    #[test]
    fn random_graph_sharded_roundtrip_bitwise(
        (n, arcs) in small_digraph(),
        seed in 0u64..1_000,
        k in 1usize..6,
        shards in 1usize..5,
    ) {
        let g = Graph::directed(n, &arcs).unwrap();
        let ads = AdsSet::build(&g, k, seed);
        let (_dir, store) = roundtrip(&ads, shards, "prop");
        assert_estimators_bitwise_equal(&ads, &store);
        let frozen = ads.freeze();
        prop_assert_eq!(
            store.engine(2).harmonic_all(),
            QueryEngine::new(&frozen).harmonic_all()
        );
    }
}

#[test]
fn directed_weighted_disconnected_across_shard_counts() {
    let k = 4;
    let directed = generators::gnp_directed(120, 0.04, 3);
    let weighted = generators::random_weighted_digraph(80, 4, 0.5, 2.5, 7);
    let mut arcs = generators::gnp(40, 0.1, 5)
        .all_arcs()
        .map(|(u, v, _)| (u, v))
        .collect::<Vec<_>>();
    arcs.extend(
        generators::gnp(40, 0.1, 6)
            .all_arcs()
            .map(|(u, v, _)| (u + 40, v + 40)),
    );
    let disconnected = Graph::directed(100, &arcs).unwrap(); // nodes 80..100 isolated
    for (name, g) in [
        ("directed", &directed),
        ("weighted", &weighted),
        ("disconnected", &disconnected),
    ] {
        let ads = AdsSet::build(g, k, 11);
        let frozen = ads.freeze();
        let per_node: Vec<f64> = (0..g.num_nodes() as NodeId)
            .map(|v| centrality::harmonic(&ads.hip(v)))
            .collect();
        for shards in [1usize, 2, 4] {
            let (_dir, store) = roundtrip(&ads, shards, &format!("{name}_{shards}"));
            assert_estimators_bitwise_equal(&ads, &store);
            // Batch engine over the sharded store, across thread counts.
            for threads in [1usize, 3, 0] {
                assert_eq!(
                    store.engine(threads).harmonic_all(),
                    per_node,
                    "{name}: sharded batch harmonic, shards = {shards}, threads = {threads}"
                );
            }
            assert_eq!(
                store.engine(0).cardinality_batch(&[(0, 2.0), (5, 1.0)]),
                QueryEngine::new(&frozen).cardinality_batch(&[(0, 2.0), (5, 1.0)]),
                "{name}: sharded cardinality, shards = {shards}"
            );
        }
    }
}

#[test]
fn more_shards_than_nodes_still_roundtrips() {
    let g = generators::gnp_directed(5, 0.4, 9);
    let ads = AdsSet::build(&g, 2, 1);
    let (_dir, store) = roundtrip(&ads, 9, "overshard");
    assert_estimators_bitwise_equal(&ads, &store);
}

// ---------------------------------------------------------------------
// Corruption rejection
// ---------------------------------------------------------------------

fn sample_dir(tag: &str) -> (ShardDir, AdsSet) {
    let g = generators::gnp_directed(60, 0.07, 21);
    let ads = AdsSet::build(&g, 3, 5);
    let dir = ShardDir::new(tag);
    freeze_sharded(&ads, 3, dir.path()).expect("freeze_sharded");
    (dir, ads)
}

fn manifest_path(dir: &ShardDir) -> PathBuf {
    dir.path().join(SHARD_MANIFEST_FILE)
}

/// Recomputes and patches a manifest buffer's header checksum so tests
/// can tamper with *semantic* fields and still present a
/// checksum-consistent manifest — proving the structural validation
/// itself rejects the corruption, not just the checksum.
fn resign_manifest(bytes: &mut [u8]) {
    let mut h = Fnv1a64::new();
    h.update(&bytes[..32]);
    h.update(&[0u8; 8]);
    h.update(&bytes[40..]);
    let digest = h.digest();
    bytes[32..40].copy_from_slice(&digest.to_le_bytes());
}

#[test]
fn rejects_manifest_bad_magic_truncation_and_bit_flip() {
    let (dir, _ads) = sample_dir("manifest_corrupt");
    let path = manifest_path(&dir);
    let good = std::fs::read(&path).unwrap();

    // Bad magic.
    let mut bad = good.clone();
    bad[0] ^= 0xff;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        ShardedStore::load(dir.path()),
        Err(ServeError::Frozen(_))
    ));

    // Truncation at a few prefix lengths.
    for cut in [0, 10, 43, good.len() - 1] {
        std::fs::write(&path, &good[..cut]).unwrap();
        assert!(
            ShardedStore::load(dir.path()).is_err(),
            "manifest truncated to {cut} bytes must be rejected"
        );
    }

    // A bit flip anywhere in the manifest is caught by its checksum.
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x20;
    std::fs::write(&path, &flipped).unwrap();
    assert!(ShardedStore::load(dir.path()).is_err());

    // Restore: the pristine directory must load again (the harness
    // itself isn't what's failing).
    std::fs::write(&path, &good).unwrap();
    assert!(ShardedStore::load(dir.path()).is_ok());
}

#[test]
fn rejects_overlapping_shard_ranges_with_valid_checksum() {
    let (dir, _ads) = sample_dir("manifest_overlap");
    let path = manifest_path(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    // Record 1 starts at offset 44 + 32; widen record 0's end into it so
    // ranges overlap, then re-sign so only structural validation can
    // object.
    let rec0_end = 44 + 8;
    let end = u64::from_le_bytes(bytes[rec0_end..rec0_end + 8].try_into().unwrap());
    bytes[rec0_end..rec0_end + 8].copy_from_slice(&(end + 1).to_le_bytes());
    resign_manifest(&mut bytes);
    std::fs::write(&path, &bytes).unwrap();
    let err = ShardedStore::load(dir.path()).unwrap_err();
    assert!(
        err.to_string().contains("overlapping") || err.to_string().contains("continue"),
        "unexpected error: {err}"
    );
}

#[test]
fn rejects_shard_entry_sum_mismatch_with_valid_checksum() {
    let (dir, _ads) = sample_dir("manifest_entrysum");
    let path = manifest_path(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    let rec0_entries = 44 + 16;
    let entries = u64::from_le_bytes(bytes[rec0_entries..rec0_entries + 8].try_into().unwrap());
    bytes[rec0_entries..rec0_entries + 8].copy_from_slice(&(entries + 1).to_le_bytes());
    resign_manifest(&mut bytes);
    std::fs::write(&path, &bytes).unwrap();
    assert!(ShardedStore::load(dir.path()).is_err());
}

#[test]
fn rejects_missing_corrupt_swapped_and_padded_shard_files() {
    let (dir, _ads) = sample_dir("shard_files");
    let shard0 = dir.path().join(shard_file_name(0));
    let shard1 = dir.path().join(shard_file_name(1));
    let good0 = std::fs::read(&shard0).unwrap();
    let good1 = std::fs::read(&shard1).unwrap();

    // Missing shard file.
    std::fs::remove_file(&shard0).unwrap();
    let err = ShardedStore::load(dir.path()).unwrap_err();
    assert!(err.to_string().contains("missing"), "unexpected: {err}");
    std::fs::write(&shard0, &good0).unwrap();

    // Bit flip inside a shard payload: caught by the store checksum (and
    // the manifest digest).
    let mut bad = good0.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x01;
    std::fs::write(&shard0, &bad).unwrap();
    assert!(ShardedStore::load(dir.path()).is_err());
    std::fs::write(&shard0, &good0).unwrap();

    // Swapped shard files: each is a perfectly valid store on its own,
    // so only the manifest's whole-file digest can catch it.
    std::fs::write(&shard0, &good1).unwrap();
    std::fs::write(&shard1, &good0).unwrap();
    let err = ShardedStore::load(dir.path()).unwrap_err();
    assert!(err.to_string().contains("digest"), "unexpected: {err}");
    std::fs::write(&shard0, &good0).unwrap();
    std::fs::write(&shard1, &good1).unwrap();

    // Trailing bytes appended to a shard file leave the readable prefix
    // intact — rejected either by the store loader's exact-length check
    // (mapped path) or by the whole-file digest (streaming path).
    let mut padded = good0.clone();
    padded.extend_from_slice(b"JUNK");
    std::fs::write(&shard0, &padded).unwrap();
    let err = ShardedStore::load(dir.path()).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("digest") || msg.contains("trailing"),
        "unexpected: {err}"
    );
    std::fs::write(&shard0, &good0).unwrap();

    // Pristine again ⇒ loads.
    assert!(ShardedStore::load(dir.path()).is_ok());
}

#[test]
fn v2_sharded_freeze_roundtrips_bitwise() {
    // The whole battery again, but with the shards frozen in the
    // compressed v2 format: the manifest format is unchanged, its
    // digests simply pin the v2 bytes.
    let g = generators::gnp_directed(90, 0.06, 13);
    let ads = AdsSet::build(&g, 4, 11);
    let dir = ShardDir::new("v2_freeze");
    let manifest = freeze_sharded_format(&ads, 3, dir.path(), StoreFormat::V2).expect("freeze v2");
    let store = ShardedStore::load(dir.path()).expect("load v2 sharded store");
    assert_eq!(store.manifest(), &manifest);
    for i in 0..store.num_shards() {
        assert_eq!(store.shard(i).format_version(), 2);
    }
    assert_estimators_bitwise_equal(&ads, &store);
    let frozen = ads.freeze();
    assert_eq!(
        store.engine(2).harmonic_all(),
        QueryEngine::new(&frozen).harmonic_all()
    );
}

#[test]
fn rejects_v2_shard_under_a_manifest_digested_over_v1_bytes() {
    // Re-encoding one shard file in the v2 format without re-freezing
    // the manifest leaves a perfectly valid store on disk whose bytes
    // the manifest never signed. Only the whole-file digest can object —
    // and its error must say which format it actually read.
    let (dir, _ads) = sample_dir("format_swap");
    let shard0 = dir.path().join(shard_file_name(0));
    let shard = FrozenAdsSet::load(&shard0).expect("shard 0 loads standalone");
    assert_eq!(shard.format_version(), 1);
    shard
        .save_format(&shard0, StoreFormat::V2)
        .expect("re-encode shard 0 as v2");
    // The swapped file is a valid v2 store by itself…
    assert_eq!(
        FrozenAdsSet::load(&shard0)
            .expect("valid v2")
            .format_version(),
        2
    );
    // …but the manifest's digest was computed over the v1 bytes.
    let err = ShardedStore::load(dir.path()).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("digest") && msg.contains("format-v2") && msg.contains("format version"),
        "digest error must name the re-encoded format: {err}"
    );
}

#[test]
fn manifest_survives_its_own_byte_roundtrip() {
    let (dir, _ads) = sample_dir("manifest_rt");
    let manifest = ShardManifest::load(manifest_path(&dir)).unwrap();
    assert_eq!(
        ShardManifest::from_bytes(&manifest.to_bytes()).unwrap(),
        manifest
    );
}
