//! Property-based tests (proptest) over the core data structures and
//! estimator invariants.

use proptest::prelude::*;

use adsketch::core::builder::{local_updates, pruned_dijkstra};
use adsketch::core::{reference, size_est, uniform_ranks, AdsSet, DynamicAds};
use adsketch::graph::{Graph, NodeId};
use adsketch::minhash::BottomKSketch;
use adsketch::stream::MorrisCounter;
use adsketch::util::ranks::BaseB;
use adsketch::util::{RankHasher, Rng64, SplitMix64};

/// Strategy: a small directed graph as (n, arcs).
fn small_digraph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..24).prop_flat_map(|n| {
        let arcs = prop::collection::vec((0..n as NodeId, 0..n as NodeId), 0..80);
        (Just(n), arcs)
    })
}

/// Strategy: a small *weighted* directed graph whose weight palette
/// (index-encoded) deliberately mixes zero weights (distance-0 ties),
/// unit weights, and two generic values; low arc counts leave nodes
/// disconnected, self-loops and parallel arcs are allowed.
fn small_weighted_digraph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId, usize)>)> {
    (2usize..20).prop_flat_map(|n| {
        let arcs = prop::collection::vec((0..n as NodeId, 0..n as NodeId, 0usize..4), 0..60);
        (Just(n), arcs)
    })
}

const WEIGHT_PALETTE: [f64; 4] = [0.0, 1.0, 0.5, 2.5];

proptest! {
    /// Every ADS built from any canonical order over any rank assignment
    /// satisfies its structural invariants, and its HIP weights are ≥ 1
    /// and non-decreasing with distance.
    #[test]
    fn ads_invariants_hold_for_any_order(
        seed in 0u64..10_000,
        n in 1usize..300,
        k in 1usize..10,
    ) {
        let h = RankHasher::new(seed);
        let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
        let order: Vec<(NodeId, f64)> =
            (0..n).map(|i| (i as NodeId, (i / 3) as f64)).collect(); // with ties
        let ads = reference::bottomk_from_order(k, &order, &ranks);
        prop_assert_eq!(ads.validate(), Ok(()));
        prop_assert!(ads.len() <= n);
        prop_assert!(ads.len() >= k.min(n));
        let hip = ads.hip_weights();
        let mut last = 0.0;
        for it in hip.items() {
            prop_assert!(it.weight >= 1.0 - 1e-12);
            prop_assert!(it.weight >= last - 1e-12, "weights must not decrease");
            last = it.weight;
        }
    }

    /// The HIP estimate of the full prefix is ≥ the sketch size (each of
    /// the sampled nodes contributes ≥ 1) and exact when n ≤ k.
    #[test]
    fn hip_estimate_bounds(seed in 0u64..10_000, n in 1usize..200, k in 1usize..12) {
        let h = RankHasher::new(seed);
        let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
        let order: Vec<(NodeId, f64)> = (0..n).map(|i| (i as NodeId, i as f64)).collect();
        let ads = reference::bottomk_from_order(k, &order, &ranks);
        let est = ads.hip_weights().reachable_estimate();
        prop_assert!(est >= ads.len() as f64 - 1e-9);
        if n <= k {
            prop_assert!((est - n as f64).abs() < 1e-9, "exact for n ≤ k");
        }
    }

    /// PrunedDijkstra equals the brute force on arbitrary digraphs
    /// (unweighted, arbitrary topology including self-loops and parallel
    /// arcs).
    #[test]
    fn pruned_dijkstra_equals_brute_force((n, arcs) in small_digraph(), seed in 0u64..1_000, k in 1usize..5) {
        let g = Graph::directed(n, &arcs).unwrap();
        let ranks = uniform_ranks(n, seed);
        let fast = pruned_dijkstra::build(&g, k, &ranks).unwrap();
        let slow = reference::build_bottomk(&g, k, &ranks);
        prop_assert_eq!(fast, slow);
    }

    /// The relax-time-pruned search core is bitwise identical to the
    /// retained heap baseline — sequential, pop-prune yardstick and
    /// wave-parallel at threads {1, 2, 4, 0} — on weighted digraphs
    /// mixing zero-weight ties, unit weights, parallel arcs, self-loops
    /// and disconnected nodes. The tieless (Appendix A) entry path must
    /// be insensitive to the same filter (its per-node caps are asserted
    /// directly, its relax-vs-pop equality is unit-tested in-crate).
    #[test]
    fn relax_pruned_core_equals_baseline(
        (n, warcs) in small_weighted_digraph(),
        seed in 0u64..1_000,
        k in 1usize..5,
    ) {
        let arcs: Vec<(NodeId, NodeId, f64)> = warcs
            .iter()
            .map(|&(u, v, w)| (u, v, WEIGHT_PALETTE[w]))
            .collect();
        let g = Graph::directed_weighted(n, &arcs).unwrap();
        let ranks = uniform_ranks(n, seed);
        let (base, base_stats) =
            pruned_dijkstra::build_baseline_with_stats(&g, k, &ranks).unwrap();
        let (pop, pop_stats) = pruned_dijkstra::build_pop_prune_with_stats(&g, k, &ranks).unwrap();
        let (relax, relax_stats) = pruned_dijkstra::build_with_stats(&g, k, &ranks).unwrap();
        prop_assert_eq!(&pop, &base);
        prop_assert_eq!(&relax, &base);
        prop_assert_eq!(pop_stats.relaxations, base_stats.relaxations);
        prop_assert!(relax_stats.relaxations <= base_stats.relaxations);
        prop_assert_eq!(relax_stats.insertions, base_stats.insertions);
        for threads in [1usize, 2, 4, 0] {
            let par = pruned_dijkstra::build_parallel(&g, k, &ranks, threads).unwrap();
            prop_assert_eq!(&par, &base, "threads {}", threads);
        }
        // Tieless entry path: at most k entries per distinct distance,
        // and never more total entries than the canonical sketch admits.
        let tieless = pruned_dijkstra::build_tieless_entries(&g, k, &ranks).unwrap();
        for (v, entries) in tieless.iter().enumerate() {
            let mut i = 0;
            while i < entries.len() {
                let d = entries[i].dist;
                let same = entries.iter().filter(|e| e.dist == d).count();
                prop_assert!(same <= k, "node {}: {} entries at distance {}", v, same, d);
                i += same;
            }
        }
    }

    /// Incremental maintenance is order-insensitive and bitwise exact:
    /// a [`DynamicAds`] fed the same arc multiset in ANY insertion order
    /// — zero-weight ties, self-loops, parallel arcs and all — finishes
    /// bitwise identical to a from-scratch batch build of the final
    /// graph. This is the dynamic-graph tentpole invariant.
    #[test]
    fn dynamic_insertions_equal_batch_build_in_any_order(
        (n, warcs) in small_weighted_digraph(),
        seed in 0u64..1_000,
        shuffle in 0u64..1_000,
        k in 1usize..5,
    ) {
        let mut arcs: Vec<(NodeId, NodeId, f64)> = warcs
            .iter()
            .map(|&(u, v, w)| (u, v, WEIGHT_PALETTE[w]))
            .collect();
        let g = Graph::directed_weighted(n, &arcs).unwrap();
        let batch = AdsSet::build(&g, k, seed);
        // Fisher–Yates with a deterministic stream: every `shuffle`
        // value exercises a different insertion order.
        let mut rng = SplitMix64::new(shuffle);
        for i in (1..arcs.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            arcs.swap(i, j);
        }
        let mut dynamic = DynamicAds::new(n, k, seed);
        for &(u, v, w) in &arcs {
            dynamic.insert_edge(u, v, w).unwrap();
        }
        prop_assert_eq!(dynamic.snapshot(), batch);
    }

    /// LocalUpdates reaches the same fixpoint on arbitrary digraphs.
    #[test]
    fn local_updates_equals_brute_force((n, arcs) in small_digraph(), seed in 0u64..1_000) {
        let g = Graph::directed(n, &arcs).unwrap();
        let ranks = uniform_ranks(n, seed);
        let fast = local_updates::build(&g, 2, &ranks).unwrap();
        let slow = reference::build_bottomk(&g, 2, &ranks);
        prop_assert_eq!(fast, slow);
    }

    /// Bottom-k sketch merge is exactly the sketch of the union, for any
    /// two element sets.
    #[test]
    fn bottomk_merge_is_union(
        xs in prop::collection::hash_set(0u64..5_000, 0..200),
        ys in prop::collection::hash_set(0u64..5_000, 0..200),
        seed in 0u64..1_000,
        k in 1usize..16,
    ) {
        let h = RankHasher::new(seed);
        let mut a = BottomKSketch::new(k);
        let mut b = BottomKSketch::new(k);
        let mut u = BottomKSketch::new(k);
        for &x in &xs { a.insert(&h, x); u.insert(&h, x); }
        for &y in &ys { b.insert(&h, y); u.insert(&h, y); }
        a.merge(&b);
        prop_assert_eq!(a, u);
    }

    /// Insertion order never matters for a bottom-k sketch.
    #[test]
    fn bottomk_insertion_order_irrelevant(
        mut xs in prop::collection::vec(0u64..1_000, 1..100),
        seed in 0u64..1_000,
    ) {
        let h = RankHasher::new(seed);
        let mut fwd = BottomKSketch::new(5);
        for &x in &xs { fwd.insert(&h, x); }
        xs.reverse();
        let mut rev = BottomKSketch::new(5);
        for &x in &xs { rev.insert(&h, x); }
        prop_assert_eq!(fwd, rev);
    }

    /// Base-b discretization: `r/b < r' ≤ r` and levels round-trip.
    #[test]
    fn base_b_bracket(r in 1e-12f64..1.0, b in 1.01f64..4.0) {
        let base = BaseB::new(b);
        let d = base.discretize(r);
        prop_assert!(d <= r * (1.0 + 1e-9));
        prop_assert!(d > r / b * (1.0 - 1e-9));
        prop_assert_eq!(base.level(d), base.level(r));
    }

    /// The size estimator is monotone in s and anchored at E_k = k.
    #[test]
    fn size_estimator_monotone(k in 1usize..64, s in 0usize..200) {
        let e1 = size_est::size_estimator(s, k);
        let e2 = size_est::size_estimator(s + 1, k);
        prop_assert!(e2 > e1 - 1e-12);
        prop_assert!((size_est::size_estimator(k, k) - k as f64).abs() < 1e-9);
    }

    /// Morris counters never go negative and exponents are monotone under
    /// adds.
    #[test]
    fn morris_monotone(adds in prop::collection::vec(0.0f64..50.0, 0..50), seed in 0u64..1_000) {
        let mut c = MorrisCounter::new(1.3, seed);
        let mut last_x = 0;
        for a in adds {
            c.add(a);
            prop_assert!(c.exponent() >= last_x);
            last_x = c.exponent();
            prop_assert!(c.estimate() >= 0.0);
        }
    }

    /// MinHash extraction from an ADS at distance d equals the sketch of
    /// the distance-d prefix built directly.
    #[test]
    fn ads_minhash_extraction_consistent(
        seed in 0u64..5_000,
        n in 1usize..150,
        k in 1usize..8,
        cut in 0usize..150,
    ) {
        let cut = cut.min(n);
        let h = RankHasher::new(seed);
        let ranks: Vec<f64> = (0..n as u64).map(|v| h.rank(v)).collect();
        let order: Vec<(NodeId, f64)> = (0..n).map(|i| (i as NodeId, i as f64)).collect();
        let ads = reference::bottomk_from_order(k, &order, &ranks);
        let extracted = ads.minhash_at(cut as f64);
        let mut direct = BottomKSketch::new(k);
        for e in 0..=cut.min(n - 1) as u64 {
            direct.insert_ranked(ranks[e as usize], e);
        }
        prop_assert_eq!(extracted, direct);
    }
}
