//! The distributed tier's end-to-end guarantee: every answer a
//! [`Router`] merges over a fleet of per-shard backends is **bitwise
//! identical** to the local [`QueryEngine`] on the unsharded frozen
//! store — across fleet sizes {1, 2, 4}, worker counts, pipelined and
//! concurrent clients, and every request type of the protocol
//! (mirroring `tests/serve_equivalence.rs` for the single-process tier).

mod common;

use proptest::prelude::*;

use adsketch::core::centrality::DecayKernel;
use adsketch::core::{AdsSet, QueryEngine};
use adsketch::graph::{generators, NodeId};
use adsketch::serve::{Client, Request, Response, RouterConfig, ServeError};

use common::{assert_routed_equals_local, fast_path_config, ReplicaFleet};

/// Freezes `ads` into `shards` backend processes (in-process servers,
/// one [`adsketch::serve::BackendStore`] each, one replica per shard)
/// plus a router in front. The guard tears the whole fleet down and
/// wipes the scratch dir on drop.
fn spawn_fleet(ads: &AdsSet, shards: usize, workers: usize, tag: &str) -> ReplicaFleet {
    ReplicaFleet::spawn(
        ads,
        shards,
        1,
        workers,
        &format!("eqv_{tag}"),
        RouterConfig::default(),
    )
}

#[test]
fn routed_answers_bitwise_identical_across_fleets_and_workers() {
    let g = generators::gnp_directed(80, 0.06, 17);
    let ads = AdsSet::build(&g, 4, 9);
    let frozen = ads.freeze();
    for shards in [1usize, 2, 4] {
        for workers in [1usize, 2] {
            let guard = spawn_fleet(&ads, shards, workers, &format!("eq_{shards}_{workers}"));
            let mut client = Client::connect(guard.addr).expect("connect");
            assert_routed_equals_local(&mut client, &ads, &frozen);
        }
    }
}

#[test]
fn weighted_and_disconnected_graphs_route_identically() {
    let weighted = generators::random_weighted_digraph(60, 3, 0.5, 2.5, 7);
    let mut arcs = generators::gnp(30, 0.12, 5)
        .all_arcs()
        .map(|(u, v, _)| (u, v))
        .collect::<Vec<_>>();
    arcs.extend(
        generators::gnp(30, 0.12, 6)
            .all_arcs()
            .map(|(u, v, _)| (u + 30, v + 30)),
    );
    let disconnected = adsketch::graph::Graph::directed(70, &arcs).unwrap();
    for (name, g) in [("weighted", &weighted), ("disconnected", &disconnected)] {
        let ads = AdsSet::build(g, 3, 2);
        let frozen = ads.freeze();
        let guard = spawn_fleet(&ads, 2, 2, &format!("kinds_{name}"));
        let mut client = Client::connect(guard.addr).expect("connect");
        assert_routed_equals_local(&mut client, &ads, &frozen);
    }
}

#[test]
fn pipelined_and_concurrent_clients_get_ordered_identical_answers() {
    let g = generators::barabasi_albert(120, 3, 4);
    let ads = AdsSet::build(&g, 4, 6);
    let frozen = ads.freeze();
    let local = QueryEngine::new(&frozen);
    let guard = spawn_fleet(&ads, 4, 2, "pipeline");

    // Deep pipeline on one router connection, mixing request types whose
    // scatter fan-out differs — responses must align with request order.
    let reqs: Vec<Request> = (0..40u32)
        .map(|i| {
            if i % 3 == 0 {
                Request::Jaccard {
                    d: 2.0,
                    pairs: vec![(i, (i + 61) % 120), ((i + 1) % 120, (i + 2) % 120)],
                }
            } else {
                Request::Harmonic {
                    nodes: vec![i, (i + 7) % 120, (i * 3) % 120],
                }
            }
        })
        .collect();
    let mut client = Client::connect(guard.addr).expect("connect");
    let responses = client.pipeline(&reqs).expect("pipeline");
    for (req, resp) in reqs.iter().zip(&responses) {
        let want = match req {
            Request::Harmonic { nodes } => local.harmonic_batch(nodes),
            Request::Jaccard { d, pairs } => local.jaccard_batch(pairs, *d),
            _ => unreachable!(),
        };
        assert_eq!(resp, &Response::Floats(want));
    }

    // Many concurrent connections served by a smaller worker pool.
    std::thread::scope(|s| {
        for c in 0..6u32 {
            let addr = guard.addr;
            let local = &local;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let nodes: Vec<NodeId> = (0..120).filter(|v| v % (c + 2) == 0).collect();
                for _ in 0..10 {
                    assert_eq!(
                        client.harmonic(&nodes).expect("harmonic"),
                        local.harmonic_batch(&nodes)
                    );
                }
            });
        }
    });
}

#[test]
fn router_error_frames_match_the_single_process_server() {
    let g = generators::gnp(30, 0.1, 3);
    let ads = AdsSet::build(&g, 2, 1);
    let frozen = ads.freeze();
    let guard = spawn_fleet(&ads, 2, 1, "errors");
    let mut client = Client::connect(guard.addr).expect("connect");
    // Out-of-range nodes are rejected by the router itself, with the
    // byte-identical message the single-process server produces.
    let err = client.harmonic(&[0, 29, 30]).unwrap_err();
    match err {
        ServeError::Remote { code, message } => {
            assert_eq!(code, adsketch::serve::proto::ERR_NODE_RANGE);
            assert_eq!(message, "node 30 out of range (store covers 30 nodes)");
        }
        other => panic!("expected a Remote error, got {other}"),
    }
    let err = client.jaccard(1.0, &[(0, 99)]).unwrap_err();
    assert!(matches!(err, ServeError::Remote { .. }));
    // The connection survives error frames.
    assert_eq!(
        client.harmonic(&[0, 1]).expect("still usable"),
        QueryEngine::new(&frozen).harmonic_batch(&[0, 1])
    );
}

#[test]
fn backends_reject_nodes_outside_their_shard_range() {
    let g = generators::gnp(40, 0.1, 5);
    let ads = AdsSet::build(&g, 3, 8);
    let guard = spawn_fleet(&ads, 2, 1, "shard_range");
    // Talk to shard 0's backend directly: a node owned by shard 1 is
    // in-graph but not resident here — it must earn ERR_SHARD_RANGE, not
    // a silent empty-row answer.
    let mut direct = Client::connect(guard.slots[0][0].addr).expect("connect backend");
    let err = direct.harmonic(&[39]).unwrap_err();
    match err {
        ServeError::Remote { code, message } => {
            assert_eq!(code, adsketch::serve::proto::ERR_SHARD_RANGE);
            assert!(message.contains("39"), "{message}");
        }
        other => panic!("expected a Remote error, got {other}"),
    }
    // Owned nodes still answer, and the connection survived the error.
    assert_eq!(direct.harmonic(&[0]).expect("owned node").len(), 1);
}

#[test]
fn router_shutdown_never_drops_an_accepted_pipelines_response() {
    let g = generators::gnp(40, 0.12, 11);
    let ads = AdsSet::build(&g, 3, 5);
    let frozen = ads.freeze();
    let local = QueryEngine::new(&frozen);
    let guard = spawn_fleet(&ads, 2, 2, "shutdown_order");

    // Pipeline a burst of requests, then shut the router down while they
    // are (potentially) still in flight. Every request written before
    // shutdown was accepted — each must still get its answer.
    let reqs: Vec<Request> = (0..25u32)
        .map(|i| Request::Harmonic {
            nodes: (0..40).map(|v| (v + i) % 40).collect(),
        })
        .collect();
    let mut client = Client::connect(guard.addr).expect("connect");
    let router_handle = guard.router_handle();
    let responses = std::thread::scope(|s| {
        let h = s.spawn(move || {
            // Let the pipeline start flowing, then pull the plug.
            std::thread::sleep(std::time::Duration::from_millis(5));
            router_handle.shutdown();
        });
        let responses = client
            .pipeline(&reqs)
            .expect("pipelined responses survive shutdown");
        h.join().expect("shutdown thread");
        responses
    });
    assert_eq!(responses.len(), reqs.len());
    for (req, resp) in reqs.iter().zip(&responses) {
        let Request::Harmonic { nodes } = req else {
            unreachable!()
        };
        assert_eq!(resp, &Response::Floats(local.harmonic_batch(nodes)));
    }
}

#[test]
fn fast_path_full_battery_identical_cold_and_hot() {
    let g = generators::gnp_directed(80, 0.06, 23);
    let ads = AdsSet::build(&g, 4, 3);
    let frozen = ads.freeze();
    let guard = ReplicaFleet::spawn(&ads, 2, 1, 2, "eqv_fastpath", fast_path_config());
    let mut client = Client::connect(guard.addr).expect("connect");
    // Cold pass populates the cache, hot pass replays from it — both
    // must be bitwise identical to the local engine.
    assert_routed_equals_local(&mut client, &ads, &frozen);
    assert_routed_equals_local(&mut client, &ads, &frozen);
    let stats = guard.cache_stats.as_ref().expect("cache enabled");
    assert!(stats.hits() > 0, "second battery pass must hit the cache");
    assert!(stats.misses() > 0, "first battery pass must miss the cache");
    assert!(stats.resident_entries() <= stats.capacity_entries());
}

#[test]
fn cache_evicts_instead_of_growing_past_its_budget() {
    let g = generators::barabasi_albert(300, 2, 13);
    let ads = AdsSet::build(&g, 3, 5);
    let frozen = ads.freeze();
    let local = QueryEngine::new(&frozen);
    // 4 KiB of cache = 64 accounted entries; the workload inserts far
    // more distinct answers than that across three cached kinds.
    let config = RouterConfig {
        cache_bytes: 4096,
        ..RouterConfig::default()
    };
    let guard = ReplicaFleet::spawn(&ads, 2, 1, 2, "eqv_cache_bound", config);
    let stats = guard.cache_stats.as_ref().expect("cache enabled");
    let budget_entries = 4096 / 64;
    assert_eq!(stats.capacity_entries(), budget_entries);
    let mut client = Client::connect(guard.addr).expect("connect");
    let nodes: Vec<NodeId> = (0..300).collect();
    let queries: Vec<(NodeId, f64)> = nodes.iter().map(|&v| (v, 2.0)).collect();
    for _ in 0..3 {
        assert_eq!(
            client.harmonic(&nodes).expect("harmonic"),
            local.harmonic_batch(&nodes)
        );
        assert_eq!(
            client.cardinality(&queries).expect("cardinality"),
            local.cardinality_batch(&queries)
        );
    }
    // Filling far past the byte budget evicts; residency never grows
    // beyond the configured capacity.
    assert!(
        stats.resident_entries() <= stats.capacity_entries(),
        "resident {} > capacity {}",
        stats.resident_entries(),
        stats.capacity_entries()
    );
    // `resident_bytes` reports actual allocation (slab arrays + map
    // tables), not the per-entry budgeting estimate: it must be real
    // (nonzero once entries are resident) and bounded by construction —
    // the configured budget plus allocator rounding, never
    // workload-proportional.
    assert!(stats.resident_bytes() > 0);
    assert!(
        stats.resident_bytes() <= 4 * 4096,
        "allocated {} bytes for a 4096-byte budget",
        stats.resident_bytes()
    );
    assert!(stats.misses() > budget_entries as u64);
}

proptest! {
    /// Random tiny graph, random fleet size: routed mixed batches are
    /// bitwise identical to the local engine.
    #[test]
    fn random_graphs_route_bitwise_identically(
        n in 2usize..24,
        seed in 0u64..500,
        k in 1usize..5,
        shards in 1usize..5,
    ) {
        let g = generators::gnp_directed(n, 0.15, seed);
        let ads = AdsSet::build(&g, k, seed);
        let frozen = ads.freeze();
        let local = QueryEngine::new(&frozen);
        let guard = spawn_fleet(&ads, shards, 2, "prop");
        let mut client = Client::connect(guard.addr).expect("connect");
        let nodes: Vec<NodeId> = (0..n as NodeId).collect();
        prop_assert_eq!(
            client.harmonic(&nodes).expect("harmonic"),
            local.harmonic_batch(&nodes)
        );
        let pairs: Vec<(NodeId, NodeId)> = nodes
            .iter()
            .map(|&v| (v, (v + n as NodeId / 2) % n as NodeId))
            .collect();
        prop_assert_eq!(
            client.jaccard(1.5, &pairs).expect("jaccard"),
            local.jaccard_batch(&pairs, 1.5)
        );
    }
}

proptest! {
    /// With the answer cache and the coalescing window both on,
    /// concurrent clients interleaving hot (repeated), cold (fresh), and
    /// coalesced (simultaneous identical) batches still get answers
    /// bitwise identical to the local engine — the fast path may change
    /// timing, never bits.
    #[test]
    fn interleaved_hot_cold_coalesced_batches_route_identically(
        n in 8u32..40,
        seed in 0u64..500,
        shards in 1usize..4,
    ) {
        let g = generators::gnp_directed(n as usize, 0.12, seed);
        let ads = AdsSet::build(&g, 3, seed);
        let frozen = ads.freeze();
        let local = QueryEngine::new(&frozen);
        let guard =
            ReplicaFleet::spawn(&ads, shards, 1, 2, "eqv_fastprop", fast_path_config());
        // Identical across clients, fired simultaneously → coalesces.
        let shared: Vec<NodeId> = (0..n).collect();
        std::thread::scope(|s| {
            for c in 0..3u32 {
                let addr = guard.addr;
                let local = &local;
                let shared = &shared;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for round in 0..3u32 {
                        assert_eq!(
                            client.harmonic(shared).expect("harmonic"),
                            local.harmonic_batch(shared)
                        );
                        // A per-client batch: cold on the first send of
                        // the pair, hot (cache-served) on the second.
                        let mine: Vec<NodeId> = (0..n)
                            .filter(|v| (v.wrapping_mul(7) + c + round) % 3 == 0)
                            .collect();
                        if mine.is_empty() {
                            continue;
                        }
                        let kernel = DecayKernel::Exponential { base: 2.0 };
                        for _ in 0..2 {
                            assert_eq!(
                                client.decay(kernel, &mine).expect("decay"),
                                local.decay_batch(kernel, &mine)
                            );
                        }
                        let q: Vec<(NodeId, f64)> =
                            mine.iter().map(|&v| (v, f64::from(round))).collect();
                        assert_eq!(
                            client.cardinality(&q).expect("cardinality"),
                            local.cardinality_batch(&q)
                        );
                    }
                });
            }
        });
        let stats = guard.cache_stats.as_ref().expect("cache enabled");
        prop_assert!(stats.hits() > 0, "repeated batches must hit the cache");
    }
}
