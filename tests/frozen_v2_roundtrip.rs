//! Compressed (format v2) store round trips must be bitwise lossless:
//! freeze → v2 encode → decode must reproduce every stored bit, and
//! every estimator must answer **bitwise identically** from the decoded
//! v2 store and from the heap-backed [`AdsSet`] it came from — across
//! directed / weighted / zero-weight-tie / disconnected graphs. Targeted
//! corruption of the compressed columns (truncated varint, overlong
//! varint, wrong escape-column length, bad version byte) must surface as
//! clean typed errors — mirroring `tests/frozen_roundtrip.rs` for the
//! v1 format. Golden fixture files committed under `tests/fixtures/`
//! pin both formats' byte images so future writer changes cannot
//! silently break old stores.

use std::path::PathBuf;

use proptest::prelude::*;

use adsketch::core::frozen::Fnv1a64;
use adsketch::core::{
    basic, centrality, similarity, size_est, AdsSet, AdsView, FrozenAdsSet, FrozenError,
    LoadOptions, QueryEngine, StoreFormat,
};
use adsketch::graph::{generators, Graph, NodeId};

/// The estimator battery of `tests/frozen_roundtrip.rs`: every estimator
/// answers bitwise identically from `frozen` and from `ads`.
fn assert_estimators_bitwise_equal(ads: &AdsSet, frozen: &FrozenAdsSet) {
    assert_eq!(frozen.k(), ads.k());
    assert_eq!(frozen.num_nodes(), ads.num_nodes());
    assert_eq!(frozen.num_entries(), ads.total_entries());
    let n = ads.num_nodes() as NodeId;
    for v in 0..n {
        let hip = ads.hip(v);
        assert_eq!(frozen.hip_weights_of(v), hip, "node {v}: HIP weights");
        assert_eq!(frozen.hip_reachable(v), hip.reachable_estimate());
        for d in [0.0, 0.5, 1.0, 2.0, 4.0, f64::INFINITY] {
            assert_eq!(frozen.hip_cardinality_at(v, d), hip.cardinality_at(d));
            if ads.k() > 1 {
                assert_eq!(
                    basic::cardinality_at_in(frozen, v, d),
                    basic::cardinality_at(ads.sketch(v), d)
                );
            }
            assert_eq!(
                size_est::cardinality_at_in(frozen, v, d),
                size_est::cardinality_at(ads.sketch(v), d)
            );
        }
        assert_eq!(
            frozen.neighborhood_function_of(v),
            hip.neighborhood_function()
        );
        assert_eq!(
            centrality::harmonic_in(frozen, v),
            centrality::harmonic(&hip)
        );
        let u = (v + 1) % n.max(1);
        assert_eq!(
            similarity::neighborhood_jaccard_in(frozen, v, u, 2.0),
            similarity::neighborhood_jaccard(ads.sketch(v), ads.sketch(u), 2.0)
        );
    }
    assert_eq!(
        frozen.distance_distribution_estimate(),
        ads.distance_distribution_estimate()
    );
}

/// freeze → v2 encode → decode, asserting the round trip is the
/// identity: the decoded store compares bitwise equal to the original,
/// re-encodes to the identical v2 bytes, and writes the identical v1
/// bytes the full-width store would.
fn roundtrip_v2(ads: &AdsSet) -> FrozenAdsSet {
    let frozen = ads.freeze();
    let v2 = frozen.to_bytes_format(StoreFormat::V2);
    let restored = FrozenAdsSet::from_bytes(&v2).expect("v2 decodes");
    assert_eq!(restored.format_version(), 2);
    assert_eq!(restored, frozen, "v2 round trip must be bitwise identity");
    assert_eq!(
        restored.to_bytes_format(StoreFormat::V2),
        v2,
        "re-encoding the decoded store must be deterministic"
    );
    assert_eq!(
        restored.to_bytes(),
        frozen.to_bytes(),
        "a v2 store must write the exact v1 byte image back"
    );
    restored
}

/// Strategy: a small directed graph as (n, arcs).
fn small_digraph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..40).prop_flat_map(|n| {
        let arcs = prop::collection::vec((0..n as NodeId, 0..n as NodeId), 0..120);
        (Just(n), arcs)
    })
}

proptest! {
    /// Random graph → build → freeze → v2 encode → decode: every
    /// estimator answer is bitwise equal to the in-memory AdsSet answer.
    #[test]
    fn random_graph_v2_roundtrip_bitwise(
        (n, arcs) in small_digraph(),
        seed in 0u64..1_000,
        k in 1usize..6,
    ) {
        let g = Graph::directed(n, &arcs).unwrap();
        let ads = AdsSet::build(&g, k, seed);
        let restored = roundtrip_v2(&ads);
        assert_estimators_bitwise_equal(&ads, &restored);
    }

    /// Corrupting any single byte of a v2 store, or truncating it
    /// anywhere, must make from_bytes fail — never silently misread.
    #[test]
    fn corrupted_or_truncated_v2_buffers_rejected(
        seed in 0u64..1_000,
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
    ) {
        let g = generators::gnp_directed(30, 0.1, seed);
        let bytes = AdsSet::build(&g, 3, seed)
            .freeze()
            .to_bytes_format(StoreFormat::V2);
        let cut = ((bytes.len() as f64 * cut_frac) as usize).min(bytes.len() - 1);
        prop_assert!(
            FrozenAdsSet::from_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut}/{} bytes must be rejected",
            bytes.len()
        );
        let mut corrupted = bytes.clone();
        let at = ((corrupted.len() as f64 * flip_frac) as usize).min(corrupted.len() - 1);
        corrupted[at] ^= 0x10;
        prop_assert!(
            FrozenAdsSet::from_bytes(&corrupted).is_err(),
            "bit flip at byte {at} must be rejected"
        );
    }
}

#[test]
fn directed_weighted_ties_disconnected_v2_roundtrips() {
    let k = 4;
    // Directed unweighted.
    let directed = generators::gnp_directed(120, 0.04, 3);
    // Weighted digraph: real-valued distances exercise the raw-dist
    // escape (too many distinct values for a win from dictionaries to
    // matter, every bit preserved regardless).
    let weighted = generators::random_weighted_digraph(80, 4, 0.5, 2.5, 7);
    // Zero-weight ties: a weighted digraph where many arcs cost 0, so
    // whole clusters sit at bit-identical distances — the canonical
    // (dist, node) tie-break produces long same-distance runs, the best
    // and most delicate case for the delta-coded node column.
    let mut tie_arcs: Vec<(NodeId, NodeId, f64)> = Vec::new();
    for v in 0..60u32 {
        tie_arcs.push((v, (v + 1) % 60, if v % 3 == 0 { 1.0 } else { 0.0 }));
        tie_arcs.push((v, (v * 7 + 2) % 60, 0.0));
    }
    let ties = Graph::directed_weighted(60, &tie_arcs).unwrap();
    // Disconnected: two G(n,p) islands plus isolated nodes.
    let mut arcs = generators::gnp(40, 0.1, 5)
        .all_arcs()
        .map(|(u, v, _)| (u, v))
        .collect::<Vec<_>>();
    arcs.extend(
        generators::gnp(40, 0.1, 6)
            .all_arcs()
            .map(|(u, v, _)| (u + 40, v + 40)),
    );
    let disconnected = Graph::directed(100, &arcs).unwrap(); // nodes 80..100 isolated
    for (name, g) in [
        ("directed", &directed),
        ("weighted", &weighted),
        ("zero_weight_ties", &ties),
        ("disconnected", &disconnected),
    ] {
        let ads = AdsSet::build(g, k, 11);
        let restored = roundtrip_v2(&ads);
        assert_estimators_bitwise_equal(&ads, &restored);
        // The batch engine on the v2 store must match the per-node heap
        // path bitwise, for every thread count.
        let per_node: Vec<f64> = (0..g.num_nodes() as NodeId)
            .map(|v| centrality::harmonic(&ads.hip(v)))
            .collect();
        for threads in [1usize, 3, 0] {
            assert_eq!(
                QueryEngine::with_threads(&restored, threads).harmonic_all(),
                per_node,
                "{name}: v2 batch harmonic, threads = {threads}"
            );
        }
    }
}

#[test]
fn v2_save_load_file_roundtrip_all_load_options() {
    let g = generators::barabasi_albert(150, 3, 9);
    let ads = AdsSet::build(&g, 8, 4);
    let frozen = ads.freeze();
    let path = std::env::temp_dir().join("adsketch_test_frozen_v2_roundtrip.ads");
    frozen.save_format(&path, StoreFormat::V2).expect("save v2");
    for opts in [
        LoadOptions::default(),
        LoadOptions::mapped(),
        LoadOptions::trusted(),
    ] {
        let loaded = FrozenAdsSet::load_with(&path, opts).expect("load v2");
        assert_eq!(loaded.format_version(), 2);
        assert_eq!(loaded, frozen);
        assert_estimators_bitwise_equal(&ads, &loaded);
    }
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// Targeted corruption of the compressed columns
// ---------------------------------------------------------------------

/// Byte-level v2 container geometry, parsed from a valid buffer so tests
/// can corrupt precisely one compressed column and re-sign the checksum.
struct V2Layout {
    /// Tag bytes `[node, dist, rank, weight]` (header bytes 40..44).
    tags: [u8; 4],
    /// Absolute offset of the first block's span inside the file.
    block0: usize,
    /// Byte length of the first block's span.
    block0_len: usize,
}

fn parse_v2_layout(bytes: &[u8]) -> V2Layout {
    let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
    let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize;
    assert_eq!(u32_at(8), 2, "fixture must be a v2 store");
    let n = u64_at(16);
    let tags = bytes[40..44].try_into().unwrap();
    let rows_per_block = u32_at(44);
    let dict_at = 48 + (n + 1) * 4;
    let dict_len = u32_at(dict_at);
    let blocks_at = dict_at + 4 + dict_len * 8;
    let num_blocks = n.div_ceil(rows_per_block);
    let blob_at = blocks_at + (num_blocks + 1) * 8 + 8;
    let b0 = u64_at(blocks_at);
    let b1 = u64_at(blocks_at + 8);
    V2Layout {
        tags,
        block0: blob_at + b0,
        block0_len: b1 - b0,
    }
}

/// The start and length (within the file) of block 0's node section —
/// the last of the four per-block column sections.
fn node_section(bytes: &[u8], lay: &V2Layout) -> (usize, usize) {
    let span = lay.block0;
    let len = |i: usize| {
        u32::from_le_bytes(bytes[span + i * 4..span + i * 4 + 4].try_into().unwrap()) as usize
    };
    let (l0, l1, l2, l3) = (len(0), len(1), len(2), len(3));
    assert_eq!(16 + l0 + l1 + l2 + l3, lay.block0_len, "sections tile");
    (span + 16 + l0 + l1 + l2, l3)
}

/// Recomputes and patches a store buffer's header checksum, so tests can
/// tamper with payload bytes and prove the *column validators* reject
/// the result (not just the checksum).
fn resign_store(bytes: &mut [u8]) {
    let mut h = Fnv1a64::new();
    h.update(&bytes[..32]);
    h.update(&[0u8; 8]);
    h.update(&bytes[40..]);
    let digest = h.digest();
    bytes[32..40].copy_from_slice(&digest.to_le_bytes());
}

/// A v2 buffer whose encoder picked every compressed representation:
/// delta-coded nodes, dict16 distances, 7-byte ranks, τ-ref weights.
fn fully_compressed_sample() -> Vec<u8> {
    let g = generators::gnp_directed(60, 0.08, 21);
    let bytes = AdsSet::build(&g, 3, 5)
        .freeze()
        .to_bytes_format(StoreFormat::V2);
    let lay = parse_v2_layout(&bytes);
    // The corruption below targets specific column encodings; fail
    // loudly if the encoder's tag choices ever change out from under it.
    assert_eq!(
        lay.tags,
        [0, 0, 0, 0],
        "sample must use delta nodes / dict16 dists / fixed7 ranks / tau-ref weights"
    );
    bytes
}

#[test]
fn truncated_varint_in_node_column_is_a_clean_typed_error() {
    let mut bytes = fully_compressed_sample();
    let lay = parse_v2_layout(&bytes);
    let (at, len) = node_section(&bytes, &lay);
    assert!(len >= 1, "block 0 must have a nonempty node section");
    // Setting the continuation bit on the section's final byte makes the
    // last varint run off the end of the column.
    bytes[at + len - 1] |= 0x80;
    resign_store(&mut bytes);
    let err = FrozenAdsSet::from_bytes(&bytes).unwrap_err();
    assert!(matches!(err, FrozenError::Corrupt(_)), "{err:?}");
    assert!(err.to_string().contains("truncated varint"), "{err}");
}

#[test]
fn overlong_varint_in_node_column_is_a_clean_typed_error() {
    let mut bytes = fully_compressed_sample();
    let lay = parse_v2_layout(&bytes);
    let (at, len) = node_section(&bytes, &lay);
    assert!(len >= 2, "need two bytes to splice an overlong form");
    // The section opens with a single-byte varint (node ids < 60): fuse
    // it with the next byte into `[x|0x80, 0x00]` — a redundant
    // continuation, the canonical-form violation decoders must reject.
    assert!(bytes[at] & 0x80 == 0, "first varint must be single-byte");
    bytes[at] |= 0x80;
    bytes[at + 1] = 0x00;
    resign_store(&mut bytes);
    let err = FrozenAdsSet::from_bytes(&bytes).unwrap_err();
    assert!(matches!(err, FrozenError::Corrupt(_)), "{err:?}");
    assert!(err.to_string().contains("overlong"), "{err}");
}

#[test]
fn wrong_escape_column_length_is_a_clean_typed_error() {
    let mut bytes = fully_compressed_sample();
    let lay = parse_v2_layout(&bytes);
    // Move 7 bytes from the rank section's declared length into the
    // weight section's: the four lengths still tile the block span
    // exactly, but the fixed-width rank column no longer matches its
    // tag's 7-bytes-per-entry shape.
    let span = lay.block0;
    let rank_len = u32::from_le_bytes(bytes[span + 4..span + 8].try_into().unwrap());
    assert!(rank_len >= 7, "block 0 must hold at least one rank");
    bytes[span + 4..span + 8].copy_from_slice(&(rank_len - 7).to_le_bytes());
    let weight_len = u32::from_le_bytes(bytes[span + 8..span + 12].try_into().unwrap());
    bytes[span + 8..span + 12].copy_from_slice(&(weight_len + 7).to_le_bytes());
    resign_store(&mut bytes);
    let err = FrozenAdsSet::from_bytes(&bytes).unwrap_err();
    assert!(matches!(err, FrozenError::Corrupt(_)), "{err:?}");
    assert!(
        err.to_string().contains("wrong escape-column length"),
        "{err}"
    );
}

#[test]
fn wrong_version_byte_is_a_clean_typed_error() {
    let mut bytes = fully_compressed_sample();
    bytes[8] = 3;
    resign_store(&mut bytes);
    match FrozenAdsSet::from_bytes(&bytes) {
        Err(FrozenError::UnsupportedVersion(3)) => {}
        other => panic!("expected UnsupportedVersion(3), got {other:?}"),
    }
    // Version 0 likewise.
    bytes[8] = 0;
    resign_store(&mut bytes);
    assert!(matches!(
        FrozenAdsSet::from_bytes(&bytes),
        Err(FrozenError::UnsupportedVersion(0))
    ));
}

#[test]
fn unknown_column_tag_is_a_clean_typed_error() {
    let mut bytes = fully_compressed_sample();
    bytes[40] = 9; // node-column tag
    resign_store(&mut bytes);
    let err = FrozenAdsSet::from_bytes(&bytes).unwrap_err();
    assert!(matches!(err, FrozenError::Corrupt(_)), "{err:?}");
    assert!(err.to_string().contains("tag"), "{err}");
}

// ---------------------------------------------------------------------
// Golden fixtures: committed byte images of both formats
// ---------------------------------------------------------------------

/// The fixture store: tiny, deterministic, and fully exercising the
/// compressed columns (delta nodes, dict16 dists, fixed7 ranks, τ-ref
/// weights).
fn golden_store() -> (AdsSet, FrozenAdsSet) {
    let g = generators::barabasi_albert(30, 2, 42);
    let ads = AdsSet::build(&g, 3, 9);
    let frozen = ads.freeze();
    (ads, frozen)
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Format-compat gate: today's writer must reproduce the committed v1
/// and v2 fixture files byte-for-byte, and today's reader must decode
/// both back to the identical store. A failure here means an on-disk
/// format change slipped in without a version bump — regenerate with
/// `ADSKETCH_REGEN_FIXTURES=1 cargo test golden_fixture` only for a
/// deliberate, versioned format change.
#[test]
fn golden_fixture_files_encode_and_decode_byte_for_byte() {
    let (ads, frozen) = golden_store();
    let v1 = frozen.to_bytes();
    let v2 = frozen.to_bytes_format(StoreFormat::V2);
    let (p1, p2) = (
        fixture_path("golden_ba30_k3.v1.ads"),
        fixture_path("golden_ba30_k3.v2.ads"),
    );
    if std::env::var("ADSKETCH_REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(p1.parent().unwrap()).unwrap();
        std::fs::write(&p1, &v1).unwrap();
        std::fs::write(&p2, &v2).unwrap();
    }
    let g1 = std::fs::read(&p1).expect("committed v1 fixture");
    let g2 = std::fs::read(&p2).expect("committed v2 fixture");
    assert_eq!(g1, v1, "v1 writer diverged from the committed fixture");
    assert_eq!(g2, v2, "v2 writer diverged from the committed fixture");
    let s1 = FrozenAdsSet::from_bytes(&g1).expect("v1 fixture decodes");
    let s2 = FrozenAdsSet::from_bytes(&g2).expect("v2 fixture decodes");
    assert_eq!(s1.format_version(), 1);
    assert_eq!(s2.format_version(), 2);
    assert_eq!(s1, frozen);
    assert_eq!(s2, frozen);
    // Cross-format transcodes reproduce the other fixture exactly.
    assert_eq!(s1.to_bytes_format(StoreFormat::V2), g2);
    assert_eq!(s2.to_bytes(), g1);
    // And the decoded fixtures answer estimators like the build output.
    assert_estimators_bitwise_equal(&ads, &s1);
    assert_estimators_bitwise_equal(&ads, &s2);
}
