//! Equivalence suite for the wave-parallel PrunedDijkstra, the unweighted
//! BFS fast path and the relax-time frontier pruning: every configuration
//! must be *bitwise identical* (`assert_eq!` on the whole `AdsSet`) to the
//! sequential and reference builders, across thread counts
//! {1, 2, 4, 0 = all cores} and across graph regimes (directed, weighted,
//! zero-weight ties, disconnected). On every graph family the relax-time
//! filter must also never *increase* settled-node counts relative to the
//! heap baseline — pruning earlier can only remove work. Graph seeds
//! mirror the unit tests in `crates/core/src/builder/pruned_dijkstra.rs`.

use adsketch::core::builder::pruned_dijkstra;
use adsketch::core::{reference, uniform_ranks, AdsSet};
use adsketch::graph::{generators, Graph};
use adsketch::util::rng::{Rng64, SplitMix64};

const THREADS: [usize; 4] = [1, 2, 4, 0];

/// Asserts sequential == reference, parallel == sequential for every
/// thread count, pop-prune == sequential, and the relax-time pruning
/// work gates (settled counts never grow, insertions are invariant).
fn assert_all_equivalent(g: &Graph, k: usize, ranks: &[f64], label: &str) {
    let (seq, relax_stats) = pruned_dijkstra::build_with_stats(g, k, ranks).unwrap();
    let brute = reference::build_bottomk(g, k, ranks);
    assert_eq!(seq, brute, "{label}: sequential vs reference");
    let (base, base_stats) = pruned_dijkstra::build_baseline_with_stats(g, k, ranks).unwrap();
    assert_eq!(base, seq, "{label}: heap baseline vs sequential");
    let (pop, pop_stats) = pruned_dijkstra::build_pop_prune_with_stats(g, k, ranks).unwrap();
    assert_eq!(pop, seq, "{label}: pop-prune yardstick vs sequential");
    // Relax-time pruning may only remove settled nodes, never add any —
    // and removes only visits that would have ended in a prune, so the
    // insert sequence is untouched.
    assert!(
        relax_stats.relaxations <= base_stats.relaxations,
        "{label}: relax pruning increased relaxations ({} vs baseline {})",
        relax_stats.relaxations,
        base_stats.relaxations
    );
    assert_eq!(
        relax_stats.insertions, base_stats.insertions,
        "{label}: insertions must be invariant under the pruning strategy"
    );
    assert_eq!(
        pop_stats.relaxations, base_stats.relaxations,
        "{label}: pop-time-only pruning settles exactly the baseline set"
    );
    assert!(
        relax_stats.heap_pushes <= pop_stats.heap_pushes,
        "{label}: the frontier filter may only shrink push counts"
    );
    for threads in THREADS {
        let par = pruned_dijkstra::build_parallel(g, k, ranks, threads).unwrap();
        assert_eq!(par, seq, "{label}: parallel ({threads} threads)");
    }
}

#[test]
fn directed_unweighted_graphs() {
    // BFS fast path (unit weights) + wave merge, directed reachability.
    for seed in 0..5u64 {
        let g = generators::gnp_directed(60, 0.08, seed);
        let ranks = uniform_ranks(60, seed + 100);
        assert_all_equivalent(&g, 3, &ranks, &format!("gnp_directed seed {seed}"));
    }
}

#[test]
fn weighted_digraphs() {
    // Heap path end to end (weights disqualify the BFS dispatch).
    for seed in 0..5u64 {
        let g = generators::random_weighted_digraph(50, 4, 0.5, 3.0, seed);
        assert!(!g.is_unit_weight());
        let ranks = uniform_ranks(50, seed + 200);
        assert_all_equivalent(&g, 4, &ranks, &format!("weighted seed {seed}"));
    }
}

#[test]
fn undirected_distance_ties() {
    // Unweighted undirected graphs are full of equal distances; the
    // canonical (dist, id) tie order must survive the wave merge.
    for seed in 0..5u64 {
        let g = generators::gnp(70, 0.06, seed + 9);
        let ranks = uniform_ranks(70, seed + 300);
        assert_all_equivalent(&g, 2, &ranks, &format!("gnp ties seed {seed}"));
    }
}

#[test]
fn zero_weight_tie_digraphs() {
    // Zero-weight arcs put many nodes at identical distances (including 0
    // from each other) — the hardest tie-breaking regime, and weighted, so
    // it must not take the BFS fast path.
    for seed in 0..4u64 {
        let mut rng = SplitMix64::new(seed);
        let n = 40usize;
        let mut arcs = Vec::new();
        for u in 0..n as u32 {
            for _ in 0..3 {
                let v = rng.range_usize(n) as u32;
                if v != u {
                    let w = if rng.bernoulli(0.5) { 0.0 } else { 1.0 };
                    arcs.push((u, v, w));
                }
            }
        }
        let g = Graph::directed_weighted(n, &arcs).unwrap();
        assert!(!g.is_unit_weight());
        let ranks = uniform_ranks(n, seed + 900);
        assert_all_equivalent(&g, 3, &ranks, &format!("zero-weight seed {seed}"));
    }
}

#[test]
fn disconnected_components() {
    // Two disjoint triangles plus isolated nodes; waves must not leak
    // entries across components at any thread count.
    let g = Graph::undirected(8, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
    let ranks = uniform_ranks(8, 4);
    assert_all_equivalent(&g, 8, &ranks, "disconnected");
    let set = pruned_dijkstra::build_parallel(&g, 8, &ranks, 4).unwrap();
    for v in 0..3u32 {
        assert!(set.sketch(v).entries().iter().all(|e| e.node < 3));
    }
    for v in 6..8u32 {
        assert_eq!(set.sketch(v).len(), 1, "isolated node samples only itself");
    }
}

#[test]
fn unit_weight_but_weighted_representation() {
    // All-1.0 stored weights must take the BFS fast path and still agree.
    let edges: Vec<(u32, u32, f64)> = generators::gnp_edges(50, 0.08, 77)
        .into_iter()
        .map(|(u, v)| (u, v, 1.0))
        .collect();
    let g = Graph::undirected_weighted(50, &edges).unwrap();
    assert!(g.is_weighted() && g.is_unit_weight());
    let ranks = uniform_ranks(50, 78);
    assert_all_equivalent(&g, 3, &ranks, "unit-weight weighted");
}

#[test]
fn ads_set_facade_parallel_matches_build() {
    let g = generators::barabasi_albert(300, 3, 15);
    let seq = AdsSet::build(&g, 8, 99);
    for threads in THREADS {
        assert_eq!(AdsSet::build_parallel(&g, 8, 99, threads), seq);
    }
}

#[test]
fn bfs_fast_path_relaxes_no_more_than_dijkstra() {
    // BuildStats gate: on unweighted graphs the BFS fast path must do no
    // more relaxations (visited nodes) than the heap-based baseline. The
    // pop-prune yardstick replays the exact baseline visit sequence
    // (equal counters); the default relax-pruned build settles strictly
    // fewer nodes on any graph where the filter fires.
    let g = generators::barabasi_albert(500, 3, 7);
    let ranks = uniform_ranks(500, 8);
    let (set_bfs, bfs) = pruned_dijkstra::build_with_stats(&g, 4, &ranks).unwrap();
    let (set_pop, pop) = pruned_dijkstra::build_pop_prune_with_stats(&g, 4, &ranks).unwrap();
    let (set_heap, heap) = pruned_dijkstra::build_baseline_with_stats(&g, 4, &ranks).unwrap();
    assert_eq!(set_bfs, set_heap);
    assert_eq!(set_pop, set_heap);
    assert_eq!(pop.relaxations, heap.relaxations);
    assert!(
        bfs.relaxations < heap.relaxations,
        "relax filter never fired: {} vs {}",
        bfs.relaxations,
        heap.relaxations
    );
    // Expansion only ever happens from inserted nodes, which are identical
    // across pruning modes — so each search discovers the same node set,
    // and every discovery is either enqueued or relax-pruned:
    assert_eq!(bfs.heap_pushes + bfs.pruned_at_relax, heap.relaxations);
    // …and the level-synchronous BFS settles everything it enqueues.
    assert_eq!(bfs.relaxations, bfs.heap_pushes);
    assert_eq!(bfs.insertions, heap.insertions);
}
