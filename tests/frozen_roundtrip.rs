//! Freeze → serialize → deserialize round trips must be lossless: every
//! estimator answers **bitwise identically** from the restored
//! [`FrozenAdsSet`] and from the heap-backed [`AdsSet`] it was frozen
//! from, across directed / weighted / disconnected graphs; corrupted or
//! truncated buffers must be rejected.

use proptest::prelude::*;

use adsketch::core::{
    basic, centrality, similarity, size_est, AdsSet, AdsView, FrozenAdsSet, QueryEngine,
};
use adsketch::graph::{generators, Graph, NodeId};

/// Asserts that every estimator of the suite returns bitwise-identical
/// answers from `ads` and `frozen` for every node (and a pair sample).
fn assert_estimators_bitwise_equal(ads: &AdsSet, frozen: &FrozenAdsSet) {
    assert_eq!(frozen.k(), ads.k());
    assert_eq!(frozen.num_nodes(), ads.num_nodes());
    assert_eq!(frozen.num_entries(), ads.total_entries());
    let n = ads.num_nodes() as NodeId;
    for v in 0..n {
        let hip = ads.hip(v);
        // HIP estimators.
        assert_eq!(frozen.hip_weights_of(v), hip, "node {v}: HIP weights");
        assert_eq!(frozen.hip_reachable(v), hip.reachable_estimate());
        for d in [0.0, 0.5, 1.0, 2.0, 4.0, f64::INFINITY] {
            assert_eq!(frozen.hip_cardinality_at(v, d), hip.cardinality_at(d));
            // Basic (MinHash-extraction) estimator; defined for k > 1.
            if ads.k() > 1 {
                assert_eq!(
                    basic::cardinality_at_in(frozen, v, d),
                    basic::cardinality_at(ads.sketch(v), d)
                );
            }
            // Size-only estimator.
            assert_eq!(
                size_est::cardinality_at_in(frozen, v, d),
                size_est::cardinality_at(ads.sketch(v), d)
            );
        }
        // Neighborhood function and centralities.
        assert_eq!(
            frozen.neighborhood_function_of(v),
            hip.neighborhood_function()
        );
        assert_eq!(
            centrality::harmonic_in(frozen, v),
            centrality::harmonic(&hip)
        );
        assert_eq!(
            centrality::sum_of_distances_in(frozen, v),
            centrality::sum_of_distances(&hip)
        );
        // HIP similarity against a fixed partner.
        let u = (v + 1) % n.max(1);
        assert_eq!(
            similarity::neighborhood_jaccard_in(frozen, v, u, 2.0),
            similarity::neighborhood_jaccard(ads.sketch(v), ads.sketch(u), 2.0)
        );
    }
    // Whole-graph distance distribution.
    assert_eq!(
        frozen.distance_distribution_estimate(),
        ads.distance_distribution_estimate()
    );
}

fn roundtrip(ads: &AdsSet) -> FrozenAdsSet {
    let frozen = ads.freeze();
    let bytes = frozen.to_bytes();
    let restored = FrozenAdsSet::from_bytes(&bytes).expect("roundtrip");
    assert_eq!(restored, frozen, "from_bytes(to_bytes(_)) must be identity");
    restored
}

/// Strategy: a small directed graph as (n, arcs).
fn small_digraph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..40).prop_flat_map(|n| {
        let arcs = prop::collection::vec((0..n as NodeId, 0..n as NodeId), 0..120);
        (Just(n), arcs)
    })
}

proptest! {
    /// Random graph → build → freeze → to_bytes → from_bytes: every
    /// estimator answer is bitwise equal to the in-memory AdsSet answer.
    #[test]
    fn random_graph_roundtrip_bitwise(
        (n, arcs) in small_digraph(),
        seed in 0u64..1_000,
        k in 1usize..6,
    ) {
        let g = Graph::directed(n, &arcs).unwrap();
        let ads = AdsSet::build(&g, k, seed);
        let restored = roundtrip(&ads);
        assert_estimators_bitwise_equal(&ads, &restored);
    }

    /// Corrupting any single byte of a serialized store, or truncating it
    /// anywhere, must make from_bytes fail — never silently misread.
    #[test]
    fn corrupted_or_truncated_buffers_rejected(
        seed in 0u64..1_000,
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
    ) {
        let g = generators::gnp_directed(30, 0.1, seed);
        let bytes = AdsSet::build(&g, 3, seed).freeze().to_bytes();
        // Truncation at an arbitrary prefix length.
        let cut = ((bytes.len() as f64 * cut_frac) as usize).min(bytes.len() - 1);
        prop_assert!(
            FrozenAdsSet::from_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut}/{} bytes must be rejected",
            bytes.len()
        );
        // Single-bit corruption anywhere (header or payload).
        let mut corrupted = bytes.clone();
        let at = ((corrupted.len() as f64 * flip_frac) as usize).min(corrupted.len() - 1);
        corrupted[at] ^= 0x10;
        prop_assert!(
            FrozenAdsSet::from_bytes(&corrupted).is_err(),
            "bit flip at byte {at} must be rejected"
        );
    }
}

#[test]
fn directed_weighted_disconnected_roundtrips() {
    let k = 4;
    // Directed unweighted.
    let directed = generators::gnp_directed(120, 0.04, 3);
    // Weighted digraph (real-valued distances, Dijkstra path).
    let weighted = generators::random_weighted_digraph(80, 4, 0.5, 2.5, 7);
    // Disconnected: two G(n,p) islands plus isolated nodes.
    let mut arcs = generators::gnp(40, 0.1, 5)
        .all_arcs()
        .map(|(u, v, _)| (u, v))
        .collect::<Vec<_>>();
    arcs.extend(
        generators::gnp(40, 0.1, 6)
            .all_arcs()
            .map(|(u, v, _)| (u + 40, v + 40)),
    );
    let disconnected = Graph::directed(100, &arcs).unwrap(); // nodes 80..100 isolated
    for (name, g) in [
        ("directed", &directed),
        ("weighted", &weighted),
        ("disconnected", &disconnected),
    ] {
        let ads = AdsSet::build(g, k, 11);
        let restored = roundtrip(&ads);
        assert_estimators_bitwise_equal(&ads, &restored);
        // The batch engine answers from the restored store must match the
        // per-node heap path too, for every thread count.
        let per_node: Vec<f64> = (0..g.num_nodes() as NodeId)
            .map(|v| centrality::harmonic(&ads.hip(v)))
            .collect();
        for threads in [1usize, 3, 0] {
            assert_eq!(
                QueryEngine::with_threads(&restored, threads).harmonic_all(),
                per_node,
                "{name}: batch harmonic, threads = {threads}"
            );
        }
    }
}

#[test]
fn save_load_file_roundtrip() {
    let g = generators::barabasi_albert(150, 3, 9);
    let ads = AdsSet::build(&g, 8, 4);
    let frozen = ads.freeze();
    let path = std::env::temp_dir().join("adsketch_test_frozen_roundtrip.ads");
    frozen.save(&path).expect("save");
    let loaded = FrozenAdsSet::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, frozen);
    assert_estimators_bitwise_equal(&ads, &loaded);
}

#[test]
fn load_missing_file_is_io_error() {
    let err = FrozenAdsSet::load("/nonexistent/adsketch.ads").unwrap_err();
    assert!(err.to_string().contains("i/o error"), "{err}");
}
